//! A greedy rule-based baseline optimizer.
//!
//! The paper compares Quartz against existing compilers (Qiskit, t|ket⟩,
//! voqc, Quilc) whose logical-optimization stages apply manually designed
//! transformations greedily. Those systems cannot be run offline in this
//! reproduction, so this module provides a representative of the same
//! class: a fixpoint loop of hand-written peephole rules applied greedily
//! (adjacent inverse cancellation, rotation fusion, Hadamard–CNOT–Hadamard
//! flipping, and removal of identity rotations). The evaluation harness uses
//! it as the "greedy rules" baseline column.

use crate::preprocess::cancel_adjacent_inverses;
use quartz_ir::{Circuit, Gate, Instruction};

/// Statistics for a baseline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BaselineStats {
    /// Number of fixpoint iterations performed.
    pub passes: usize,
    /// Gate count before optimization.
    pub gates_before: usize,
    /// Gate count after optimization.
    pub gates_after: usize,
}

/// Runs the greedy rule-based baseline until no rule applies.
pub fn greedy_optimize(circuit: &Circuit) -> (Circuit, BaselineStats) {
    let gates_before = circuit.gate_count();
    let mut current = circuit.clone();
    let mut passes = 0;
    loop {
        passes += 1;
        let next = one_pass(&current);
        if next.gate_count() == current.gate_count() && next == current {
            let stats = BaselineStats {
                passes,
                gates_before,
                gates_after: next.gate_count(),
            };
            return (next, stats);
        }
        current = next;
        if passes > 1000 {
            // Defensive bound; the rules strictly reduce or preserve gate
            // count, so this is unreachable in practice.
            let stats = BaselineStats {
                passes,
                gates_before,
                gates_after: current.gate_count(),
            };
            return (current, stats);
        }
    }
}

fn one_pass(circuit: &Circuit) -> Circuit {
    let cancelled = cancel_adjacent_inverses(circuit);
    let fused = fuse_adjacent_rotations(&cancelled);
    flip_hadamard_cnot(&fused)
}

/// Fuses directly adjacent rotations of the same kind on the same wire and
/// drops rotations that become multiples of 2π.
fn fuse_adjacent_rotations(circuit: &Circuit) -> Circuit {
    let instrs = circuit.instructions();
    let n = instrs.len();
    let preds = circuit.wire_predecessors();
    // next instruction on the wire of a single-qubit gate
    let mut next_single: Vec<Option<usize>> = vec![None; n];
    for (i, ps) in preds.iter().enumerate() {
        for p in ps.iter().flatten() {
            if instrs[*p].gate.num_qubits() == 1 && instrs[i].qubits.contains(&instrs[*p].qubits[0])
            {
                next_single[*p] = Some(i);
            }
        }
    }
    let mut removed = vec![false; n];
    let mut replacement: Vec<Option<Instruction>> = vec![None; n];
    for i in 0..n {
        if removed[i] {
            continue;
        }
        let gate = instrs[i].gate;
        if !matches!(gate, Gate::Rz | Gate::U1 | Gate::Rx | Gate::Ry) {
            continue;
        }
        if let Some(j) = next_single[i] {
            if !removed[j] && instrs[j].gate == gate && instrs[j].qubits == instrs[i].qubits {
                let a = replacement[i]
                    .as_ref()
                    .map(|r| r.params[0].clone())
                    .unwrap_or_else(|| instrs[i].params[0].clone());
                let sum = a.add(&instrs[j].params[0]);
                replacement[j] = Some(Instruction::new(gate, instrs[j].qubits.clone(), vec![sum]));
                removed[i] = true;
            }
        }
    }
    let mut out = Circuit::new(circuit.num_qubits(), circuit.num_params());
    for i in 0..n {
        if removed[i] {
            continue;
        }
        let instr = replacement[i].clone().unwrap_or_else(|| instrs[i].clone());
        // Drop rotations that are exact multiples of 2π.
        if matches!(instr.gate, Gate::Rz | Gate::U1)
            && instr.params[0].is_constant()
            && instr.params[0].const_pi4().rem_euclid(8) == 0
        {
            continue;
        }
        out.push(instr);
    }
    out
}

/// Rewrites H(a) H(b) · CNOT(a,b) · H(a) H(b) into CNOT(b,a) — the classic
/// manual rule of Figure 3a — whenever the surrounding Hadamards are
/// directly adjacent to the CNOT.
fn flip_hadamard_cnot(circuit: &Circuit) -> Circuit {
    let instrs = circuit.instructions();
    let n = instrs.len();
    let preds = circuit.wire_predecessors();
    // successor per instruction per operand
    let mut succs: Vec<Vec<Option<usize>>> =
        instrs.iter().map(|i| vec![None; i.qubits.len()]).collect();
    for (i, ps) in preds.iter().enumerate() {
        for (op, p) in ps.iter().enumerate() {
            if let Some(pi) = p {
                let q = instrs[i].qubits[op];
                let p_op = instrs[*pi].qubits.iter().position(|&x| x == q).unwrap();
                succs[*pi][p_op] = Some(i);
            }
        }
    }
    let is_h_on =
        |idx: usize, q: usize| instrs[idx].gate == Gate::H && instrs[idx].qubits == vec![q];

    let mut removed = vec![false; n];
    let mut replacement: Vec<Option<Instruction>> = vec![None; n];
    for i in 0..n {
        if removed[i] || instrs[i].gate != Gate::Cnot {
            continue;
        }
        let (c, t) = (instrs[i].qubits[0], instrs[i].qubits[1]);
        let before_c = preds[i][0];
        let before_t = preds[i][1];
        let after_c = succs[i][0];
        let after_t = succs[i][1];
        let (Some(bc), Some(bt), Some(ac), Some(at)) = (before_c, before_t, after_c, after_t)
        else {
            continue;
        };
        if [bc, bt, ac, at].iter().any(|&x| removed[x]) {
            continue;
        }
        if is_h_on(bc, c) && is_h_on(bt, t) && is_h_on(ac, c) && is_h_on(at, t) {
            removed[bc] = true;
            removed[bt] = true;
            removed[ac] = true;
            removed[at] = true;
            replacement[i] = Some(Instruction::new(Gate::Cnot, vec![t, c], vec![]));
        }
    }
    let mut out = Circuit::new(circuit.num_qubits(), circuit.num_params());
    for i in 0..n {
        if removed[i] {
            continue;
        }
        out.push(replacement[i].clone().unwrap_or_else(|| instrs[i].clone()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use quartz_ir::{equivalent_up_to_phase, ParamExpr};

    fn h(q: usize) -> Instruction {
        Instruction::new(Gate::H, vec![q], vec![])
    }

    #[test]
    fn greedy_cancels_and_fuses() {
        let mut c = Circuit::new(2, 0);
        c.push(h(0));
        c.push(h(0));
        c.push(Instruction::new(
            Gate::Rz,
            vec![1],
            vec![ParamExpr::constant_pi4(1)],
        ));
        c.push(Instruction::new(
            Gate::Rz,
            vec![1],
            vec![ParamExpr::constant_pi4(1)],
        ));
        c.push(Instruction::new(Gate::Cnot, vec![0, 1], vec![]));
        let (out, stats) = greedy_optimize(&c);
        assert_eq!(out.gate_count(), 2);
        assert_eq!(stats.gates_before, 5);
        assert_eq!(stats.gates_after, 2);
        assert!(equivalent_up_to_phase(&out, &c, &[], 1e-9));
    }

    #[test]
    fn greedy_flips_hadamard_cnot_sandwich() {
        let mut c = Circuit::new(2, 0);
        c.push(h(0));
        c.push(h(1));
        c.push(Instruction::new(Gate::Cnot, vec![0, 1], vec![]));
        c.push(h(0));
        c.push(h(1));
        let (out, _) = greedy_optimize(&c);
        assert_eq!(out.gate_count(), 1);
        assert_eq!(out.instructions()[0].qubits, vec![1, 0]);
        assert!(equivalent_up_to_phase(&out, &c, &[], 1e-9));
    }

    #[test]
    fn greedy_is_idempotent() {
        let mut c = Circuit::new(2, 0);
        c.push(h(0));
        c.push(Instruction::new(Gate::Cnot, vec![0, 1], vec![]));
        let (once, _) = greedy_optimize(&c);
        let (twice, _) = greedy_optimize(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn greedy_removes_full_rotations() {
        let mut c = Circuit::new(1, 0);
        c.push(Instruction::new(
            Gate::Rz,
            vec![0],
            vec![ParamExpr::constant_pi4(5)],
        ));
        c.push(Instruction::new(
            Gate::Rz,
            vec![0],
            vec![ParamExpr::constant_pi4(3)],
        ));
        let (out, _) = greedy_optimize(&c);
        assert_eq!(out.gate_count(), 0);
    }
}
