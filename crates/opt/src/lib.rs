//! # quartz-opt
//!
//! The circuit optimizer of the Quartz superoptimizer reproduction
//! (paper §6 and §7.1): transformation extraction from ECC sets, convex
//! subcircuit matching, and the cost-based backtracking search of
//! Algorithm 2 — implemented as a three-layer engine (DESIGN.md §2):
//! canonical-form fingerprints for deduplication, a [`TransformationIndex`]
//! that dispatches only the transformations whose pattern gate-multiset the
//! circuit can cover, and batched parallel frontier expansion. Matching is
//! *incremental*: a [`MatchContext`] is backed by the DAG IR
//! ([`quartz_ir::CircuitDag`]) and a child circuit's context is derived
//! from its parent's through the splice delta that created it
//! ([`MatchContext::derive`], O(rewrite footprint)) instead of being
//! rebuilt from the sequence form per dequeued circuit (DESIGN.md §5).
//! Also the preprocessing passes (Toffoli decomposition, rotation merging,
//! gate-set transpilation) and a greedy rule-based baseline.
//!
//! Batches of circuits are served concurrently by the
//! [`OptimizationService`] (DESIGN.md §6): one search frontier per circuit
//! over a single shared [`TransformationIndex`], with work stealing across
//! frontiers and per-circuit results bit-identical to standalone
//! [`Optimizer::optimize`] runs.
//!
//! Startup is *zero-generation* when a persisted library artifact is
//! available (DESIGN.md §7): [`LibraryCache`] loads a `QTZL` artifact once —
//! prebuilt dispatch index included — and [`Optimizer::from_library`] /
//! [`OptimizationService::from_library`] share it via [`std::sync::Arc`],
//! turning seconds of ECC generation into a cold file read.
//!
//! # Example
//!
//! ```
//! use quartz_gen::{Generator, GenConfig};
//! use quartz_ir::{Circuit, Gate, GateSet, Instruction};
//! use quartz_opt::{preprocess_nam, Optimizer, SearchConfig};
//! use std::time::Duration;
//!
//! // A Toffoli followed by its own inverse should optimize away almost
//! // entirely: preprocessing decomposes and merges rotations, and the
//! // search cancels what remains.
//! let mut circuit = Circuit::new(3, 0);
//! circuit.push(Instruction::new(Gate::Ccx, vec![0, 1, 2], vec![]));
//! circuit.push(Instruction::new(Gate::Ccx, vec![0, 1, 2], vec![]));
//! let preprocessed = preprocess_nam(&circuit);
//!
//! let (ecc_set, _) = Generator::new(GateSet::nam(), GenConfig::standard(2, 2, 0)).run();
//! let optimizer = Optimizer::from_ecc_set(&ecc_set, SearchConfig::with_timeout(Duration::from_secs(2)));
//! let result = optimizer.optimize(&preprocessed);
//! assert!(result.best_cost < 30);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod baseline;
mod cache;
mod cost;
mod match_cache;
mod matcher;
mod preprocess;
mod search;
mod service;
mod xform;

pub use baseline::{greedy_optimize, BaselineStats};
pub use cache::{LibraryCache, LoadedLibrary};
pub use cost::{CostModel, DeltaCoster};
pub use match_cache::{CacheStats, MatchCache};
pub use matcher::{apply_all, apply_at, find_matches, Match, MatchContext};
pub use preprocess::{
    cancel_adjacent_inverses, clifford_t_to_nam, decompose_toffolis, merge_rotations, nam_to_ibm,
    nam_to_rigetti, preprocess_ibm, preprocess_nam, preprocess_rigetti, toffoli_decomposition,
};
pub use quartz_gen::TransformationIndex;
pub use search::{Optimizer, SearchConfig, SearchProfile, SearchResult};
pub use service::{
    AdmissionError, OptimizationService, Priority, RequestId, RequestState, RequestStatus,
    ServiceEvent, ServiceRequest, ServiceScheduler,
};
pub use xform::{canonicalize, transformations_from_ecc_set, Transformation};
