//! Property-based tests for the optimizer: every rewriting step and every
//! preprocessing pass must preserve circuit semantics up to a global phase.

use proptest::prelude::*;
use quartz_gen::{Ecc, EccSet, GenConfig, Generator, Library};
use quartz_ir::{
    equivalent_up_to_phase, Circuit, CircuitDag, Gate, GateSet, Instruction, ParamExpr,
    StructuralHash,
};
use quartz_opt::{
    cancel_adjacent_inverses, canonicalize, greedy_optimize, merge_rotations, preprocess_nam,
    transformations_from_ecc_set, CostModel, MatchContext, Optimizer, SearchConfig, Transformation,
};
use std::sync::Arc;
use std::time::Duration;

fn arb_clifford_t_instruction(nq: usize) -> impl Strategy<Value = Instruction> {
    let gates = prop_oneof![
        Just(Gate::H),
        Just(Gate::X),
        Just(Gate::T),
        Just(Gate::Tdg),
        Just(Gate::S),
        Just(Gate::Sdg),
        Just(Gate::Rz),
        Just(Gate::Cnot),
        Just(Gate::Ccx),
    ];
    (gates, prop::collection::vec(0..nq, 3), -4i32..=4).prop_filter_map(
        "operands must be distinct",
        move |(gate, qs, quarters)| {
            let k = gate.num_qubits();
            let mut ops = Vec::new();
            for &q in &qs {
                if !ops.contains(&q) {
                    ops.push(q);
                }
                if ops.len() == k {
                    break;
                }
            }
            if ops.len() < k {
                return None;
            }
            let params = if gate.num_params() == 1 {
                vec![ParamExpr::constant_pi4(quarters)]
            } else {
                vec![]
            };
            Some(Instruction::new(gate, ops, params))
        },
    )
}

fn arb_clifford_t_circuit(nq: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_clifford_t_instruction(nq), 1..max_len).prop_map(move |instrs| {
        let mut c = Circuit::new(nq, 0);
        for i in instrs {
            c.push(i);
        }
        c
    })
}

/// Rebuilds `circuit` in a different topological order of its wire-dependency
/// DAG, choosing among the ready instructions with `picks` (Kahn's algorithm
/// with an arbitrary tie-break). The result is a reordering of the same
/// circuit DAG, so it must canonicalize — and therefore fingerprint — to the
/// same value.
fn random_topological_reorder(circuit: &Circuit, picks: &[usize]) -> Circuit {
    let instrs = circuit.instructions();
    let preds = circuit.wire_predecessors();
    let n = instrs.len();
    let mut indegree = vec![0usize; n];
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ps) in preds.iter().enumerate() {
        for p in ps.iter().flatten() {
            indegree[i] += 1;
            successors[*p].push(i);
        }
    }
    let mut available: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut out = Circuit::new(circuit.num_qubits(), circuit.num_params());
    let mut step = 0usize;
    while !available.is_empty() {
        let pick = picks.get(step % picks.len().max(1)).copied().unwrap_or(0) % available.len();
        step += 1;
        let chosen = available.swap_remove(pick);
        out.push(instrs[chosen].clone());
        for &s in &successors[chosen] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                available.push(s);
            }
        }
    }
    out
}

/// One shared NAM (2, 2) dispatch index for the engine-equivalence cases,
/// generated once per process instead of once per proptest case.
fn shared_nam_index() -> Arc<quartz_opt::TransformationIndex> {
    use std::sync::OnceLock;
    static INDEX: OnceLock<Arc<quartz_opt::TransformationIndex>> = OnceLock::new();
    Arc::clone(INDEX.get_or_init(|| {
        let (set, _) = Generator::new(GateSet::nam(), GenConfig::standard(2, 2, 1)).run();
        Optimizer::from_ecc_set(&set, SearchConfig::default()).shared_index()
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fingerprint_agrees_with_canonical_form_equality(
        c in arb_clifford_t_circuit(3, 10),
        picks in prop::collection::vec(0usize..64, 16),
    ) {
        // A topological reorder represents the same circuit DAG: canonical
        // forms must coincide, and equal canonical forms must imply equal
        // fingerprints (the seen-set soundness property of DESIGN.md §2.1).
        let reordered = random_topological_reorder(&c, &picks);
        let canon_a = canonicalize(&c);
        let canon_b = canonicalize(&reordered);
        prop_assert_eq!(&canon_a, &canon_b);
        prop_assert_eq!(canon_a.fingerprint(), canon_b.fingerprint());
        // Fingerprinting is a pure function of the canonical sequence.
        prop_assert_eq!(canon_a.fingerprint(), canonicalize(&canon_a).fingerprint());
    }

    #[test]
    fn canonicalize_preserves_semantics(c in arb_clifford_t_circuit(3, 10)) {
        let canon = canonicalize(&c);
        prop_assert_eq!(canon.gate_count(), c.gate_count());
        prop_assert!(equivalent_up_to_phase(&canon, &c, &[], 1e-8));
    }

    #[test]
    fn cancel_adjacent_inverses_preserves_semantics(c in arb_clifford_t_circuit(3, 12)) {
        let out = cancel_adjacent_inverses(&c);
        prop_assert!(out.gate_count() <= c.gate_count());
        prop_assert!(equivalent_up_to_phase(&out, &c, &[], 1e-8));
    }

    #[test]
    fn rotation_merging_preserves_semantics(c in arb_clifford_t_circuit(3, 12)) {
        // Rotation merging operates on the Nam gate set; convert first.
        let nam = quartz_opt::clifford_t_to_nam(&c);
        let merged = merge_rotations(&nam);
        prop_assert!(merged.gate_count() <= nam.gate_count());
        prop_assert!(equivalent_up_to_phase(&merged, &nam, &[], 1e-8));
    }

    #[test]
    fn greedy_baseline_preserves_semantics_and_never_grows(c in arb_clifford_t_circuit(3, 12)) {
        let (out, stats) = greedy_optimize(&c);
        prop_assert!(out.gate_count() <= c.gate_count());
        prop_assert_eq!(stats.gates_after, out.gate_count());
        prop_assert!(equivalent_up_to_phase(&out, &c, &[], 1e-8));
    }

    #[test]
    fn full_nam_preprocessing_preserves_semantics(c in arb_clifford_t_circuit(3, 8)) {
        let out = preprocess_nam(&c);
        prop_assert!(GateSet::nam().supports_circuit(&out));
        prop_assert!(equivalent_up_to_phase(&out, &c, &[], 1e-8));
    }

    /// A prebuilt index that survived the binary artifact round trip must
    /// drive the search to *bit-identical* results (DESIGN.md §7): same best
    /// circuit, same trajectory, same counters — for random (not necessarily
    /// semantically sound) transformation libraries and random inputs.
    #[test]
    fn loaded_prebuilt_index_searches_bit_identically(
        classes in prop::collection::vec(
            prop::collection::vec(arb_clifford_t_circuit(2, 5), 1..4), 1..5),
        input in arb_clifford_t_circuit(2, 8),
    ) {
        let mut set = EccSet::new(2, 0);
        for circuits in classes {
            set.eccs.push(Ecc::new(circuits));
        }
        let config = SearchConfig {
            timeout: Duration::from_secs(60),
            max_iterations: 6,
            ..SearchConfig::default()
        };
        let fresh = Optimizer::from_ecc_set(&set, config.clone());
        let bytes = Library::new("Test", set, true).to_bytes();
        let loaded_index = Library::from_bytes(&bytes).unwrap().into_parts().1.unwrap();
        let loaded = Optimizer::with_index(Arc::new(loaded_index), config);

        let a = fresh.optimize(&input);
        let b = loaded.optimize(&input);
        prop_assert_eq!(a.best_circuit, b.best_circuit);
        prop_assert_eq!(a.best_cost, b.best_cost);
        prop_assert_eq!(a.initial_cost, b.initial_cost);
        prop_assert_eq!(a.iterations, b.iterations);
        prop_assert_eq!(a.circuits_seen, b.circuits_seen);
        prop_assert_eq!(a.match_attempts, b.match_attempts);
        prop_assert_eq!(a.match_skips, b.match_skips);
        prop_assert_eq!(a.dedup_hits, b.dedup_hits);
        prop_assert_eq!(a.ctx_rebuilds, b.ctx_rebuilds);
        prop_assert_eq!(a.ctx_derives, b.ctx_derives);
        let trace_a: Vec<usize> = a.improvement_trace.iter().map(|&(_, c)| c).collect();
        let trace_b: Vec<usize> = b.improvement_trace.iter().map(|&(_, c)| c).collect();
        prop_assert_eq!(trace_a, trace_b);
    }

    /// The match-site cache (DESIGN.md §8) must be invisible in search
    /// outcomes: walking the random rewrite chains a real search performs,
    /// the cached engine's `SearchResult` is field-by-field identical to
    /// `cached_matches: false` — same best circuit, same trajectory, same
    /// dedup/context counters — while doing no worse on full match passes.
    #[test]
    fn cached_match_engine_is_bit_identical_to_full_rematching(
        input in arb_clifford_t_circuit(3, 10),
    ) {
        let nam = quartz_opt::clifford_t_to_nam(&input);
        let config = SearchConfig {
            timeout: Duration::from_secs(60),
            max_iterations: 8,
            ..SearchConfig::default()
        };
        prop_assert!(config.cached_matches, "caching must default on");
        let cached = Optimizer::with_index(shared_nam_index(), config.clone());
        let uncached = Optimizer::with_index(
            shared_nam_index(),
            SearchConfig { cached_matches: false, ..config },
        );
        let a = cached.optimize(&nam);
        let b = uncached.optimize(&nam);
        prop_assert_eq!(&a.best_circuit, &b.best_circuit);
        prop_assert_eq!(a.best_cost, b.best_cost);
        prop_assert_eq!(a.initial_cost, b.initial_cost);
        prop_assert_eq!(a.iterations, b.iterations);
        prop_assert_eq!(a.circuits_seen, b.circuits_seen);
        prop_assert_eq!(a.dedup_hits, b.dedup_hits);
        prop_assert_eq!(a.match_skips, b.match_skips);
        prop_assert_eq!(a.ctx_rebuilds, b.ctx_rebuilds);
        prop_assert_eq!(a.ctx_derives, b.ctx_derives);
        let trace_a: Vec<usize> = a.improvement_trace.iter().map(|&(_, c)| c).collect();
        let trace_b: Vec<usize> = b.improvement_trace.iter().map(|&(_, c)| c).collect();
        prop_assert_eq!(trace_a, trace_b);
        // Matching effort: only roots pay full passes under caching.
        prop_assert!(a.match_attempts <= b.match_attempts);
        prop_assert_eq!(b.matches_cached, 0);
        prop_assert_eq!(b.scoped_rematches, 0);
        if a.iterations > 1 {
            prop_assert!(a.match_attempts < b.match_attempts);
            prop_assert!(a.matches_cached > 0 || a.matches_recomputed > 0);
        }
    }

    /// The incremental structural-hash prefilter (DESIGN.md §9) must be
    /// invisible in search outcomes: with `incremental_fingerprints` on, the
    /// `SearchResult` is field-by-field identical to the materializing
    /// engine — same best circuit, trajectory, and dedup counters — while
    /// the dedup accounting identity holds and the confirm-mismatch canary
    /// stays at zero.
    #[test]
    fn incremental_fingerprint_engine_is_bit_identical_to_materializing(
        input in arb_clifford_t_circuit(3, 10),
    ) {
        let nam = quartz_opt::clifford_t_to_nam(&input);
        let config = SearchConfig {
            timeout: Duration::from_secs(60),
            max_iterations: 8,
            ..SearchConfig::default()
        };
        prop_assert!(config.incremental_fingerprints, "prefilter must default on");
        let fast = Optimizer::with_index(shared_nam_index(), config.clone());
        let slow = Optimizer::with_index(
            shared_nam_index(),
            SearchConfig { incremental_fingerprints: false, ..config },
        );
        let a = fast.optimize(&nam);
        let b = slow.optimize(&nam);
        prop_assert_eq!(&a.best_circuit, &b.best_circuit);
        prop_assert_eq!(a.best_cost, b.best_cost);
        prop_assert_eq!(a.initial_cost, b.initial_cost);
        prop_assert_eq!(a.iterations, b.iterations);
        prop_assert_eq!(a.circuits_seen, b.circuits_seen);
        prop_assert_eq!(a.dedup_hits, b.dedup_hits);
        prop_assert_eq!(a.match_attempts, b.match_attempts);
        prop_assert_eq!(a.match_skips, b.match_skips);
        prop_assert_eq!(a.ctx_rebuilds, b.ctx_rebuilds);
        prop_assert_eq!(a.ctx_derives, b.ctx_derives);
        let trace_a: Vec<usize> = a.improvement_trace.iter().map(|&(_, c)| c).collect();
        let trace_b: Vec<usize> = b.improvement_trace.iter().map(|&(_, c)| c).collect();
        prop_assert_eq!(trace_a, trace_b);
        // Dedup accounting: every hit is either a fast reject or a
        // materialized confirmation, and nothing slips past the canary.
        prop_assert_eq!(a.dedup_hits, a.fp_fast_rejects + a.dedup_hits_materialized);
        prop_assert_eq!(a.materializations_avoided, a.fp_fast_rejects);
        prop_assert_eq!(a.fp_confirm_mismatches, 0);
        // The materializing engine never touches the fast path.
        prop_assert_eq!(b.fp_fast_rejects, 0);
        prop_assert_eq!(b.materializations_avoided, 0);
        prop_assert_eq!(b.fp_confirm_mismatches, 0);
        prop_assert_eq!(b.dedup_hits_materialized, b.dedup_hits);
    }

    /// The deferred-materialization engine (DESIGN.md §13) must be invisible
    /// in search outcomes: admitting first-sight candidates on
    /// (cost, hash, delta) alone and materializing only at dequeue produces
    /// a `SearchResult` field-by-field identical to the eager engine — for
    /// random circuits, every cost model (including non-additive depth), and
    /// both sequential and batched-parallel expansion.
    #[test]
    fn deferred_engine_is_bit_identical_to_eager(
        input in arb_clifford_t_circuit(3, 10),
        model_pick in 0usize..4,
        threads in 1usize..3,
        batch_pick in 0usize..2,
    ) {
        let batch_size = [1usize, 4][batch_pick];
        let cost_model = [
            CostModel::GateCount,
            CostModel::MultiQubitGateCount,
            CostModel::TCount,
            CostModel::Depth,
        ][model_pick];
        let nam = quartz_opt::clifford_t_to_nam(&input);
        let config = SearchConfig {
            timeout: Duration::from_secs(60),
            max_iterations: 8,
            cost_model,
            num_threads: threads,
            batch_size,
            ..SearchConfig::default()
        };
        prop_assert!(config.deferred_materialization, "deferral must default on");
        let deferred = Optimizer::with_index(shared_nam_index(), config.clone());
        let eager = Optimizer::with_index(
            shared_nam_index(),
            SearchConfig { deferred_materialization: false, ..config },
        );
        let a = deferred.optimize(&nam);
        let b = eager.optimize(&nam);
        prop_assert_eq!(&a.best_circuit, &b.best_circuit);
        prop_assert_eq!(a.best_cost, b.best_cost);
        prop_assert_eq!(a.initial_cost, b.initial_cost);
        prop_assert_eq!(a.iterations, b.iterations);
        prop_assert_eq!(a.circuits_seen, b.circuits_seen);
        prop_assert_eq!(a.dedup_hits, b.dedup_hits);
        prop_assert_eq!(a.fp_fast_rejects, b.fp_fast_rejects);
        prop_assert_eq!(a.match_attempts, b.match_attempts);
        prop_assert_eq!(a.match_skips, b.match_skips);
        prop_assert_eq!(a.ctx_rebuilds, b.ctx_rebuilds);
        prop_assert_eq!(a.ctx_derives, b.ctx_derives);
        let trace_a: Vec<usize> = a.improvement_trace.iter().map(|&(_, c)| c).collect();
        let trace_b: Vec<usize> = b.improvement_trace.iter().map(|&(_, c)| c).collect();
        prop_assert_eq!(trace_a, trace_b);
        // Canaries and accounting on both engines.
        prop_assert_eq!(a.fp_confirm_mismatches, 0);
        prop_assert_eq!(b.fp_confirm_mismatches, 0);
        prop_assert_eq!(a.dedup_hits, a.fp_fast_rejects + a.dedup_hits_materialized);
        // Deferral only ever materializes a subset of what it enqueued; the
        // eager engine defers nothing.
        prop_assert!(a.dequeue_materializations <= a.materializations_deferred);
        prop_assert_eq!(b.materializations_deferred, 0);
        prop_assert_eq!(b.dequeue_materializations, 0);
    }

    #[test]
    fn search_output_is_equivalent_and_no_worse(c in arb_clifford_t_circuit(2, 8)) {
        // A small transformation library; the search must never return a
        // worse or inequivalent circuit.
        let (ecc_set, _) = Generator::new(GateSet::nam(), GenConfig::standard(2, 2, 1)).run();
        let nam = quartz_opt::clifford_t_to_nam(&c);
        let optimizer = Optimizer::from_ecc_set(
            &ecc_set,
            SearchConfig {
                timeout: Duration::from_millis(300),
                max_iterations: 10,
                ..SearchConfig::default()
            },
        );
        let result = optimizer.optimize(&nam);
        prop_assert!(result.best_cost <= nam.gate_count());
        prop_assert!(equivalent_up_to_phase(&result.best_circuit, &nam, &[], 1e-8));
    }
}

/// The rewrites a context can reach, as a sorted list of canonical circuits.
/// Two contexts for the same circuit DAG must agree on this for every
/// transformation, whatever their node-id layout or sequence representation.
fn reachable_rewrites(ctx: &MatchContext, xforms: &[Transformation]) -> Vec<Circuit> {
    let mut out: Vec<Circuit> = xforms
        .iter()
        .flat_map(|x| ctx.apply_all(x))
        .map(|c| canonicalize(&c))
        .collect();
    out.sort_by(|a, b| a.precedence_cmp(b));
    out
}

/// Equivalence of derived and freshly-built match contexts along a search
/// run: starting from a redundant circuit, repeatedly apply the first
/// available rewrite through `MatchContext::derive` and assert after *every*
/// step that the derived context finds exactly the matches a context rebuilt
/// from the rewritten sequence finds (compared through the rewrites they
/// induce, which also pins qubit maps and parameter bindings).
#[test]
fn derived_contexts_match_rebuilt_contexts_along_a_search_run() {
    let (ecc_set, _) = Generator::new(GateSet::nam(), GenConfig::standard(2, 2, 1)).run();
    let xforms = transformations_from_ecc_set(&ecc_set, true);
    assert!(!xforms.is_empty());

    let mut circuit = Circuit::new(3, 0);
    circuit.push(Instruction::new(Gate::H, vec![0], vec![]));
    circuit.push(Instruction::new(Gate::H, vec![0], vec![]));
    circuit.push(Instruction::new(
        Gate::Rz,
        vec![1],
        vec![ParamExpr::constant_pi4(1)],
    ));
    circuit.push(Instruction::new(
        Gate::Rz,
        vec![1],
        vec![ParamExpr::constant_pi4(2)],
    ));
    circuit.push(Instruction::new(Gate::Cnot, vec![0, 1], vec![]));
    circuit.push(Instruction::new(Gate::Cnot, vec![0, 1], vec![]));
    circuit.push(Instruction::new(Gate::X, vec![2], vec![]));
    circuit.push(Instruction::new(Gate::X, vec![2], vec![]));

    let mut ctx = MatchContext::new(&circuit);
    let mut steps = 0;
    'walk: loop {
        let rebuilt = MatchContext::new(&canonicalize(&ctx.to_circuit()));
        assert_eq!(
            reachable_rewrites(&ctx, &xforms),
            reachable_rewrites(&rebuilt, &xforms),
            "derived and rebuilt contexts diverged after {steps} rewrites"
        );
        ctx.dag().validate().expect("derived DAG stays consistent");
        for xform in &xforms {
            // Walk along strictly shrinking rewrites so the run terminates.
            if xform.gate_delta() >= 0 {
                continue;
            }
            if let Some(m) = ctx.find_matches(&xform.target).into_iter().next() {
                let delta = ctx.delta_for(xform, &m).expect("instantiable rewrite");
                ctx = ctx.derive(&delta);
                steps += 1;
                continue 'walk;
            }
        }
        break;
    }
    assert!(
        steps >= 3,
        "expected a multi-step rewrite chain, got {steps}"
    );
}

/// The incremental structural hash threaded along a derive chain (the way
/// the search threads it through `QueueEntry::shash`) must agree at every
/// step with a hash computed from scratch — and, because the hash is
/// order-invariant, with the hash of the freshly *canonicalized* child
/// circuit, which is exactly what the materializing engine would key on.
#[test]
fn incremental_hashes_track_fresh_hashes_along_a_derive_chain() {
    let index = shared_nam_index();
    let xforms = index.transformations();
    assert!(!xforms.is_empty());

    let mut circuit = Circuit::new(3, 0);
    circuit.push(Instruction::new(Gate::H, vec![0], vec![]));
    circuit.push(Instruction::new(Gate::H, vec![0], vec![]));
    circuit.push(Instruction::new(
        Gate::Rz,
        vec![1],
        vec![ParamExpr::constant_pi4(1)],
    ));
    circuit.push(Instruction::new(
        Gate::Rz,
        vec![1],
        vec![ParamExpr::constant_pi4(2)],
    ));
    circuit.push(Instruction::new(Gate::Cnot, vec![0, 1], vec![]));
    circuit.push(Instruction::new(Gate::Cnot, vec![0, 1], vec![]));
    circuit.push(Instruction::new(Gate::X, vec![2], vec![]));
    circuit.push(Instruction::new(Gate::X, vec![2], vec![]));

    let mut ctx = MatchContext::new(&circuit);
    let mut hash = StructuralHash::of(ctx.dag());
    let mut steps = 0;
    'walk: loop {
        // The carried hash equals a from-scratch hash of the current DAG and
        // of the canonicalized sequence the seen-set would materialize.
        assert_eq!(hash.value(), StructuralHash::of(ctx.dag()).value());
        assert_eq!(
            hash.value(),
            StructuralHash::of(&CircuitDag::from_circuit(&canonicalize(&ctx.to_circuit()))).value(),
            "carried hash diverged from the canonicalized circuit after {steps} rewrites"
        );
        for xform in xforms {
            // Walk along strictly shrinking rewrites so the run terminates.
            if xform.gate_delta() >= 0 {
                continue;
            }
            if let Some(m) = ctx.find_matches(&xform.target).into_iter().next() {
                let delta = ctx.delta_for(xform, &m).expect("instantiable rewrite");
                let previewed = hash.preview(ctx.dag(), &delta);
                let (child, footprint) = ctx.derive_with_footprint(&delta);
                hash = hash.updated(ctx.dag(), child.dag(), &footprint);
                assert_eq!(
                    previewed,
                    hash.value(),
                    "preview disagreed with post-splice update at step {steps}"
                );
                ctx = child;
                steps += 1;
                continue 'walk;
            }
        }
        break;
    }
    assert!(
        steps >= 3,
        "expected a multi-step rewrite chain, got {steps}"
    );
}

#[test]
fn transformations_from_generated_sets_preserve_semantics_when_applied() {
    // Deterministic end-to-end check kept out of the proptest block because
    // it reuses one generated ECC set across many applications.
    let (ecc_set, _) = Generator::new(GateSet::nam(), GenConfig::standard(2, 2, 1)).run();
    let xforms = transformations_from_ecc_set(&ecc_set, true);
    assert!(!xforms.is_empty());
    let mut circuit = Circuit::new(2, 0);
    circuit.push(Instruction::new(Gate::H, vec![0], vec![]));
    circuit.push(Instruction::new(Gate::H, vec![0], vec![]));
    circuit.push(Instruction::new(
        Gate::Rz,
        vec![0],
        vec![ParamExpr::constant_pi4(2)],
    ));
    circuit.push(Instruction::new(Gate::Cnot, vec![0, 1], vec![]));
    let mut applications = 0;
    for xform in &xforms {
        for rewritten in quartz_opt::apply_all(&circuit, xform) {
            applications += 1;
            assert!(
                equivalent_up_to_phase(&rewritten, &circuit, &[], 1e-8),
                "transformation application changed semantics"
            );
        }
    }
    assert!(
        applications > 0,
        "expected at least one applicable transformation"
    );
}

/// Summarizes a [`quartz_opt::SearchResult`] by its full deterministic
/// outcome field set — everything except wall-clock measurements. Two
/// results with equal summaries are "bit-identical" in the sense of the
/// service determinism contract (DESIGN.md §6/§10).
#[allow(clippy::type_complexity)]
fn outcome_fields(r: &quartz_opt::SearchResult) -> (Circuit, [usize; 5], Vec<usize>, [usize; 12]) {
    (
        r.best_circuit.clone(),
        [
            r.best_cost,
            r.initial_cost,
            r.iterations,
            r.circuits_seen,
            r.dedup_hits,
        ],
        r.improvement_trace.iter().map(|&(_, c)| c).collect(),
        [
            r.match_attempts,
            r.match_skips,
            r.ctx_rebuilds,
            r.ctx_derives,
            r.matches_cached,
            r.matches_recomputed,
            r.cache_invalidate_nodes,
            r.scoped_rematches,
            r.fp_fast_rejects,
            r.materializations_avoided,
            r.fp_confirm_mismatches,
            r.dedup_hits_materialized,
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The co-tenancy determinism contract, adversarially sampled: a random
    /// mix of requests (random circuits, budgets, priorities), admitted on a
    /// random mid-run schedule into a scheduler running with a random
    /// expansion thread count, must finish with every request's full outcome
    /// field set bit-identical to a standalone `optimize_with_budget` run of
    /// the same circuit under the same budget. Priorities, admission gaps,
    /// and thread counts may change *when* a frontier is served — never what
    /// it computes.
    #[test]
    fn cotenant_scheduler_outcomes_are_bit_identical_to_standalone(
        mix in prop::collection::vec(
            (arb_clifford_t_circuit(2, 8), 4usize..24, 0u8..3, 0usize..4),
            2..5,
        ),
        threads in 1usize..4,
    ) {
        use quartz_opt::{Priority, ServiceRequest, ServiceScheduler};

        let index = shared_nam_index();
        let config = SearchConfig {
            num_threads: threads,
            timeout: Duration::from_secs(600),
            ..SearchConfig::default()
        };
        let priority = |p: u8| match p {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        };

        // Serve the whole mix co-tenant, admitting request i only after
        // `gap_i` further global steps (mid-run admission).
        let mut scheduler = ServiceScheduler::new(
            Optimizer::with_index(Arc::clone(&index), config.clone()),
            usize::MAX,
        );
        let mut ids = Vec::new();
        let mut next = 0usize;
        let mut countdown = 0usize;
        loop {
            while next < mix.len() && countdown == 0 {
                let (circuit, budget, prio, gap) = &mix[next];
                let request = ServiceRequest::new(circuit.clone())
                    .with_budget(*budget)
                    .with_priority(priority(*prio));
                ids.push(scheduler.admit(request).expect("unbounded capacity"));
                countdown = *gap;
                next += 1;
            }
            if next >= mix.len() && !scheduler.has_work() {
                break;
            }
            scheduler.step(|_| {});
            countdown = countdown.saturating_sub(1);
        }

        // Every request: bit-identical to its standalone run.
        let standalone_optimizer = Optimizer::with_index(Arc::clone(&index), config);
        for (i, (circuit, budget, _, _)) in mix.iter().enumerate() {
            let served = scheduler.result(ids[i]).expect("finished");
            let standalone = standalone_optimizer.optimize_with_budget(circuit, *budget);
            let (served, standalone) = (outcome_fields(served), outcome_fields(&standalone));
            prop_assert!(
                served == standalone,
                "request {i} diverged from standalone under co-tenancy: {served:?} != {standalone:?}"
            );
        }
    }
}

/// The same NAM (2, 2) library resolved through a sharded content-addressed
/// registry (DESIGN.md §12.4): packed as a v2 artifact, split into two
/// shards, published, and loaded back through [`LibraryCache::with_registry`]
/// — so the returned index went through the whole lazy shard-routing path.
fn registry_nam_index() -> Arc<quartz_opt::TransformationIndex> {
    use quartz_gen::{shard_library, Registry, RegistryKey, FORMAT_VERSION_V2};
    use quartz_opt::LibraryCache;
    use std::sync::OnceLock;
    static INDEX: OnceLock<Arc<quartz_opt::TransformationIndex>> = OnceLock::new();
    Arc::clone(INDEX.get_or_init(|| {
        let (set, _) = Generator::new(GateSet::nam(), GenConfig::standard(2, 2, 1)).run();
        let library = Library::with_format("Nam", set, true, FORMAT_VERSION_V2);
        let key = RegistryKey::from_header(library.header());
        let dir =
            std::env::temp_dir().join(format!("quartz_proptest_registry_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let paths: Vec<_> = shard_library(&library, 2)
            .unwrap()
            .iter()
            .enumerate()
            .map(|(i, bytes)| {
                let path = dir.join(format!("nam.shard{i}.qtzl"));
                std::fs::write(&path, bytes).unwrap();
                path
            })
            .collect();
        let registry = Registry::open(dir.join("registry")).unwrap();
        registry.add(&paths).unwrap();
        let cache = LibraryCache::with_registry(dir.join("registry")).unwrap();
        cache.get_for_key(&key).unwrap().shared_index()
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Registry routing under co-tenancy: the scheduler serves from an index
    /// assembled out of registry shards while the standalone reference runs
    /// against the directly generated index — outcomes must still be
    /// bit-identical. Where a library's bytes come from (committed path,
    /// registry blob, shard group) may change *how* the index is built,
    /// never what the search computes.
    #[test]
    fn registry_backed_cotenant_outcomes_are_bit_identical_to_direct_loads(
        mix in prop::collection::vec(
            (arb_clifford_t_circuit(2, 8), 4usize..24, 0u8..3, 0usize..4),
            2..5,
        ),
        threads in 1usize..4,
    ) {
        use quartz_opt::{Priority, ServiceRequest, ServiceScheduler};

        let config = SearchConfig {
            num_threads: threads,
            timeout: Duration::from_secs(600),
            ..SearchConfig::default()
        };
        let priority = |p: u8| match p {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        };

        let mut scheduler = ServiceScheduler::new(
            Optimizer::with_index(registry_nam_index(), config.clone()),
            usize::MAX,
        );
        let mut ids = Vec::new();
        let mut next = 0usize;
        let mut countdown = 0usize;
        loop {
            while next < mix.len() && countdown == 0 {
                let (circuit, budget, prio, gap) = &mix[next];
                let request = ServiceRequest::new(circuit.clone())
                    .with_budget(*budget)
                    .with_priority(priority(*prio));
                ids.push(scheduler.admit(request).expect("unbounded capacity"));
                countdown = *gap;
                next += 1;
            }
            if next >= mix.len() && !scheduler.has_work() {
                break;
            }
            scheduler.step(|_| {});
            countdown = countdown.saturating_sub(1);
        }

        let standalone_optimizer = Optimizer::with_index(shared_nam_index(), config);
        for (i, (circuit, budget, _, _)) in mix.iter().enumerate() {
            let served = scheduler.result(ids[i]).expect("finished");
            let standalone = standalone_optimizer.optimize_with_budget(circuit, *budget);
            let (served, standalone) = (outcome_fields(served), outcome_fields(&standalone));
            prop_assert!(
                served == standalone,
                "request {i} diverged: registry-backed index != direct index: \
                 {served:?} != {standalone:?}"
            );
        }
    }
}
