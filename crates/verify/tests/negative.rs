//! Negative-path tests for the verifier (paper §4): pairs that are *not*
//! equivalent — wrong relative phase, wrong qubit wiring, perturbed
//! parameter expressions — must be rejected by [`Verifier::check`], and a
//! random single-instruction mutation of a verified pair must fail
//! verification. The positive direction is exercised everywhere else in
//! the workspace; soundness of the library audit rests on this direction.

use proptest::prelude::*;
use quartz_ir::{equivalent_up_to_phase, Circuit, Gate, Instruction, ParamExpr};
use quartz_verify::{Verdict, Verifier};

fn instr(gate: Gate, qubits: &[usize]) -> Instruction {
    Instruction::new(gate, qubits.to_vec(), vec![])
}

fn single(gate: Gate, qubits: &[usize]) -> Circuit {
    let nq = qubits.iter().max().map_or(1, |q| q + 1);
    let mut c = Circuit::new(nq, 0);
    c.push(instr(gate, qubits));
    c
}

/// Gates that differ from each other only by a *relative* (non-global)
/// phase on the |1⟩ amplitude are not equivalent and must be rejected —
/// even with the parameter-dependent phase search enabled.
#[test]
fn wrong_phase_is_rejected() {
    let pairs = [
        (Gate::T, Gate::S),
        (Gate::S, Gate::Sdg),
        (Gate::T, Gate::Tdg),
        (Gate::Z, Gate::S),
    ];
    for coeff_range in [0, 2] {
        let mut v = Verifier::with_phase_coeff_range(coeff_range);
        for (a, b) in pairs {
            assert!(
                !v.check(&single(a, &[0]), &single(b, &[0])).unwrap(),
                "{a:?} vs {b:?} must not verify (coeff range {coeff_range})"
            );
        }
    }
}

/// The same gate applied to the wrong qubit (or with control/target
/// swapped) is not equivalent.
#[test]
fn wrong_qubit_is_rejected() {
    let mut v = Verifier::default();

    let mut h0 = Circuit::new(2, 0);
    h0.push(instr(Gate::H, &[0]));
    let mut h1 = Circuit::new(2, 0);
    h1.push(instr(Gate::H, &[1]));
    assert!(!v.check(&h0, &h1).unwrap());

    assert!(!v
        .check(&single(Gate::Cnot, &[0, 1]), &single(Gate::Cnot, &[1, 0]))
        .unwrap());

    // The Figure 3a sandwich flips the CNOT; claiming it leaves the CNOT
    // unflipped is wrong by exactly one qubit index.
    let mut sandwich = Circuit::new(2, 0);
    for q in [0, 1] {
        sandwich.push(instr(Gate::H, &[q]));
    }
    sandwich.push(instr(Gate::Cnot, &[0, 1]));
    for q in [0, 1] {
        sandwich.push(instr(Gate::H, &[q]));
    }
    assert!(!v.check(&sandwich, &single(Gate::Cnot, &[0, 1])).unwrap());
    assert!(v.check(&sandwich, &single(Gate::Cnot, &[1, 0])).unwrap());
}

/// A perturbed parameter expression — doubled coefficient, wrong variable,
/// extra π/4 offset — breaks an otherwise-verified parametric identity.
#[test]
fn perturbed_parameter_is_rejected() {
    let m = 2;
    let mut two = Circuit::new(1, m);
    two.push(Instruction::new(
        Gate::Rz,
        vec![0],
        vec![ParamExpr::var(0, m)],
    ));
    two.push(Instruction::new(
        Gate::Rz,
        vec![0],
        vec![ParamExpr::var(1, m)],
    ));

    let fused = |expr: ParamExpr| {
        let mut c = Circuit::new(1, m);
        c.push(Instruction::new(Gate::Rz, vec![0], vec![expr]));
        c
    };

    let mut v = Verifier::default();
    // The unperturbed identity verifies ...
    assert!(v.check(&two, &fused(ParamExpr::sum_vars(0, 1, m))).unwrap());
    // ... and every perturbation of the fused angle is rejected.
    let perturbed = [
        ParamExpr::var(0, m),                                    // dropped p1
        ParamExpr::scaled_var(0, 2, m),                          // doubled p0, no p1
        ParamExpr::sum_vars(0, 1, m).add(&ParamExpr::var(0, m)), // 2·p0 + p1
        ParamExpr::sum_vars(0, 1, m).add(&ParamExpr::constant_pi4_with_params(1, m)), // + π/4
    ];
    for expr in perturbed {
        assert!(
            !v.check(&two, &fused(expr.clone())).unwrap(),
            "perturbed angle {expr:?} must not verify"
        );
    }
}

/// A wrong verdict must also be wrong as a [`Verdict`], not just as a
/// boolean: no phase witness is produced for a rejected pair.
#[test]
fn rejected_pairs_carry_no_witness() {
    let mut v = Verifier::default();
    let verdict = v
        .equivalent(&single(Gate::T, &[0]), &single(Gate::S, &[0]))
        .unwrap();
    assert_eq!(verdict, Verdict::NotEquivalent);
    assert!(!verdict.is_equivalent());
}

/// The verified base pair for the mutation proptest: the Figure 3a
/// Hadamard sandwich and its flipped CNOT.
fn base_pair() -> (Circuit, Circuit) {
    let mut lhs = Circuit::new(2, 0);
    for q in [0, 1] {
        lhs.push(instr(Gate::H, &[q]));
    }
    lhs.push(instr(Gate::Cnot, &[0, 1]));
    for q in [0, 1] {
        lhs.push(instr(Gate::H, &[q]));
    }
    (lhs, single(Gate::Cnot, &[1, 0]))
}

/// Replacement pools per arity: every mutation keeps the circuit
/// structurally valid (same operand count, no parameters).
const ONE_QUBIT_POOL: [Gate; 7] = [
    Gate::X,
    Gate::Y,
    Gate::Z,
    Gate::S,
    Gate::Sdg,
    Gate::T,
    Gate::Rx90,
];
const TWO_QUBIT_POOL: [Gate; 2] = [Gate::Cz, Gate::Swap];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mutating any single instruction of a verified pair — replacing its
    /// gate with a different same-arity gate, or re-wiring its operands —
    /// must flip the verdict to NotEquivalent. Mutations that happen to
    /// preserve the semantics (checked numerically) are skipped rather
    /// than counted.
    #[test]
    fn random_single_instruction_mutation_fails_verification(
        site in 0usize..5,
        choice in 0usize..8,
        rewire in 0u32..2,
    ) {
        let (lhs, rhs) = base_pair();
        let mut v = Verifier::default();
        prop_assert!(v.check(&lhs, &rhs).unwrap());

        let mut mutated = Circuit::new(lhs.num_qubits(), lhs.num_params());
        for (i, ins) in lhs.instructions().iter().enumerate() {
            if i != site {
                mutated.push(ins.clone());
                continue;
            }
            let mutant = if rewire == 1 {
                // Re-wire: move a 1q gate to the other qubit, or flip the
                // 2q gate's operand order.
                let qubits: Vec<usize> = if ins.qubits.len() == 1 {
                    vec![1 - ins.qubits[0]]
                } else {
                    ins.qubits.iter().rev().copied().collect()
                };
                Instruction::new(ins.gate, qubits, vec![])
            } else if ins.qubits.len() == 1 {
                Instruction::new(
                    ONE_QUBIT_POOL[choice % ONE_QUBIT_POOL.len()],
                    ins.qubits.clone(),
                    vec![],
                )
            } else {
                Instruction::new(
                    TWO_QUBIT_POOL[choice % TWO_QUBIT_POOL.len()],
                    ins.qubits.clone(),
                    vec![],
                )
            };
            mutated.push(mutant);
        }
        prop_assume!(mutated != lhs);
        // Skip the rare mutation that preserves the unitary (e.g. a
        // commuting re-wiring): the claim is about semantic mutations.
        prop_assume!(!equivalent_up_to_phase(&mutated, &rhs, &[], 1e-6));

        prop_assert!(
            !v.check(&mutated, &rhs).unwrap(),
            "mutated site {site} (choice {choice}, rewire {rewire}) must fail verification"
        );
    }
}
