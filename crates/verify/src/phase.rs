//! Phase-factor candidate search (paper §4, eq. 5).
//!
//! To eliminate the existential quantification over the global phase β in
//! Definition 1, the verifier searches a finite space of linear phase
//! factors β(p⃗) = a⃗·p⃗ + b, with a⃗ ∈ {−k..k}^m and b a multiple of π/4.
//! Candidates are found numerically at a random evaluation point and then
//! checked exactly by the verifier.

use quartz_ir::{Circuit, FingerprintContext};
use quartz_math::Poly;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A linear phase factor β(p⃗) = Σᵢ aᵢ·pᵢ + b·π/4.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhaseFactor {
    /// Integer coefficients a⃗ of the formal parameters.
    pub param_coeffs: Vec<i64>,
    /// Constant term b in units of π/4.
    pub pi4_units: i64,
}

impl PhaseFactor {
    /// The constant phase factor b·π/4.
    pub fn constant(pi4_units: i64) -> Self {
        PhaseFactor {
            param_coeffs: Vec::new(),
            pi4_units,
        }
    }

    /// The trivial phase factor β = 0.
    pub fn identity() -> Self {
        PhaseFactor::constant(0)
    }

    /// Returns `true` if the phase does not depend on the parameters.
    pub fn is_constant(&self) -> bool {
        self.param_coeffs.iter().all(|&c| c == 0)
    }

    /// The value of β at a concrete parameter assignment.
    pub fn eval(&self, param_values: &[f64]) -> f64 {
        let mut total = self.pi4_units as f64 * std::f64::consts::FRAC_PI_4;
        for (i, &a) in self.param_coeffs.iter().enumerate() {
            total += a as f64 * param_values.get(i).copied().unwrap_or(0.0);
        }
        total
    }

    /// e^{iβ} as an exact polynomial over the half-parameters.
    pub fn to_poly(&self) -> Poly {
        // β = Σ aᵢ·pᵢ + b·π/4 = Σ (2aᵢ)·hᵢ + b·π/4.
        let half_coeffs: Vec<i64> = self.param_coeffs.iter().map(|&a| 2 * a).collect();
        Poly::exp_i_angle(&half_coeffs, self.pi4_units)
    }
}

impl fmt::Display for PhaseFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        for (i, &a) in self.param_coeffs.iter().enumerate() {
            match a {
                0 => {}
                1 => parts.push(format!("p{i}")),
                -1 => parts.push(format!("-p{i}")),
                _ => parts.push(format!("{a}*p{i}")),
            }
        }
        if self.pi4_units != 0 || parts.is_empty() {
            parts.push(format!("{}*pi/4", self.pi4_units));
        }
        write!(f, "exp(i*({}))", parts.join(" + "))
    }
}

/// Enumerates all coefficient vectors a⃗ ∈ {−max..=max}^m.
fn coefficient_vectors(num_params: usize, max: i64) -> Vec<Vec<i64>> {
    let mut out = vec![Vec::new()];
    for _ in 0..num_params {
        let mut next = Vec::new();
        for prefix in &out {
            for a in -max..=max {
                let mut v = prefix.clone();
                v.push(a);
                next.push(v);
            }
        }
        out = next;
    }
    out
}

/// Finds candidate phase factors β such that
/// ⟨ψ₀|⟦C₁⟧(p⃗₀)|ψ₁⟩ ≈ e^{iβ(p⃗₀)}·⟨ψ₀|⟦C₂⟧(p⃗₀)|ψ₁⟩ (eq. 5).
///
/// When the reference amplitude of `c2` is too small to determine the phase
/// numerically, all constant phase factors are returned as candidates (the
/// exact check then decides).
pub fn candidate_phases(
    c1: &Circuit,
    c2: &Circuit,
    ctx: &FingerprintContext,
    num_params: usize,
    max_coeff: i64,
    tolerance: f64,
) -> Vec<PhaseFactor> {
    let a1 = ctx.amplitude(c1);
    let a2 = ctx.amplitude(c2);

    if a2.norm() < tolerance.max(1e-9) {
        // The phase cannot be read off numerically; fall back to all constant
        // candidates (and the trivial parameter-dependent ones if requested).
        return (0..8).map(PhaseFactor::constant).collect();
    }

    let ratio = a1 * a2.recip();
    if (ratio.norm() - 1.0).abs() > 10.0 * tolerance {
        return Vec::new();
    }
    let target_angle = ratio.arg();

    let mut out = Vec::new();
    for coeffs in coefficient_vectors(num_params, max_coeff) {
        for b in 0..8i64 {
            let phase = PhaseFactor {
                param_coeffs: coeffs.clone(),
                pi4_units: b,
            };
            let beta = phase.eval(&ctx.param_values);
            let diff = angle_distance(beta, target_angle);
            if diff < 10.0 * tolerance {
                out.push(phase);
            }
        }
    }
    out
}

/// Distance between two angles modulo 2π.
fn angle_distance(a: f64, b: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    let mut d = (a - b) % two_pi;
    if d < 0.0 {
        d += two_pi;
    }
    d.min(two_pi - d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quartz_ir::{Gate, Instruction};
    use quartz_math::Complex64;

    #[test]
    fn phase_factor_eval_and_poly_agree() {
        let phase = PhaseFactor {
            param_coeffs: vec![1, -2],
            pi4_units: 3,
        };
        let params = [0.7, -1.1];
        let beta = phase.eval(&params);
        let expected = Complex64::from_polar_unit(beta);
        let halves: Vec<f64> = params.iter().map(|p| p / 2.0).collect();
        let got = phase.to_poly().eval_f64(&halves);
        assert!(got.approx_eq(expected, 1e-12));
    }

    #[test]
    fn coefficient_vector_counts() {
        assert_eq!(coefficient_vectors(0, 2).len(), 1);
        assert_eq!(coefficient_vectors(2, 2).len(), 25);
        assert_eq!(coefficient_vectors(3, 1).len(), 27);
        assert_eq!(coefficient_vectors(2, 0), vec![vec![0, 0]]);
    }

    #[test]
    fn angle_distance_wraps() {
        assert!(angle_distance(0.1, std::f64::consts::TAU + 0.1) < 1e-12);
        assert!((angle_distance(0.0, std::f64::consts::PI) - std::f64::consts::PI).abs() < 1e-12);
        assert!(angle_distance(-0.05, 0.05) - 0.1 < 1e-12);
    }

    #[test]
    fn constant_phase_recovered_for_t_vs_identity_phase() {
        // S·S·S·S = identity with phase 0; X·T·X·T = e^{iπ/4} identity.
        let ctx = FingerprintContext::new(1, 0, 5);
        let mut lhs = Circuit::new(1, 0);
        for g in [Gate::X, Gate::T, Gate::X, Gate::T] {
            lhs.push(Instruction::new(g, vec![0], vec![]));
        }
        let id = Circuit::new(1, 0);
        let candidates = candidate_phases(&lhs, &id, &ctx, 0, 0, 1e-7);
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0], PhaseFactor::constant(1));
    }

    #[test]
    fn no_candidates_when_moduli_differ() {
        let ctx = FingerprintContext::new(1, 0, 5);
        let mut h = Circuit::new(1, 0);
        h.push(Instruction::new(Gate::H, vec![0], vec![]));
        let id = Circuit::new(1, 0);
        let candidates = candidate_phases(&h, &id, &ctx, 0, 2, 1e-7);
        assert!(candidates.is_empty());
    }

    #[test]
    fn display_forms() {
        assert_eq!(PhaseFactor::identity().to_string(), "exp(i*(0*pi/4))");
        let p = PhaseFactor {
            param_coeffs: vec![2, 0],
            pi4_units: 1,
        };
        assert_eq!(p.to_string(), "exp(i*(2*p0 + 1*pi/4))");
    }
}
