//! The circuit equivalence verifier (paper §4).
//!
//! Given two symbolic circuits, the verifier decides whether they are
//! equivalent up to a global phase (Definition 1). Following the paper, the
//! existential quantification over the phase β is eliminated by searching a
//! finite space of linear phase factors β(p⃗) = a⃗·p⃗ + b using numeric
//! evaluation (eq. 5), and each candidate is then checked exactly (eq. 6).
//! Where the paper discharges eq. (6) with Z3 over nonlinear real
//! arithmetic, this implementation reduces it to polynomial identities over
//! ℚ(ζ₈) modulo the trigonometric ideal, which is an exact decision
//! procedure for the same class of formulas (see `quartz_math::Poly`).

use crate::phase::{candidate_phases, PhaseFactor};
use crate::symsem;
use quartz_ir::{Circuit, FingerprintContext, UnsupportedAngleError};
use quartz_math::{Matrix, Poly};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of the verifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerifierConfig {
    /// Maximum absolute value of the per-parameter coefficients a⃗ in the
    /// phase factor β(p⃗) = a⃗·p⃗ + b. The paper uses 2; 0 restricts the search
    /// to constant phase factors (which the paper found sufficient for its
    /// three gate sets).
    pub max_phase_coeff: i64,
    /// Numeric tolerance used when matching phase-factor candidates
    /// (eq. 5) and in the numeric pre-filter.
    pub tolerance: f64,
    /// Number of extra random evaluation points used as a numeric pre-filter
    /// before running the exact check. Zero disables the pre-filter.
    pub prefilter_points: usize,
    /// Seed for the numeric evaluation contexts.
    pub seed: u64,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig {
            max_phase_coeff: 0,
            tolerance: 1e-7,
            prefilter_points: 1,
            seed: 0xC0FFEE,
        }
    }
}

impl VerifierConfig {
    /// A content digest of the configuration (FNV-1a over the field bytes).
    ///
    /// Two configurations with equal digests decide equivalence queries
    /// identically, so the digest is a sound cache key component for
    /// results derived from verifier verdicts — the library auditor keys
    /// its verified-cache on it (DESIGN.md §11): a sidecar produced under
    /// one configuration never short-circuits a re-audit under another.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(&self.max_phase_coeff.to_le_bytes());
        eat(&self.tolerance.to_bits().to_le_bytes());
        eat(&(self.prefilter_points as u64).to_le_bytes());
        eat(&self.seed.to_le_bytes());
        h
    }
}

/// Errors produced by the verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The circuits act on different numbers of qubits.
    QubitCountMismatch(usize, usize),
    /// A circuit uses an angle that cannot be represented exactly.
    UnsupportedAngle(UnsupportedAngleError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::QubitCountMismatch(a, b) => {
                write!(f, "cannot compare circuits over {a} and {b} qubits")
            }
            VerifyError::UnsupportedAngle(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<UnsupportedAngleError> for VerifyError {
    fn from(e: UnsupportedAngleError) -> Self {
        VerifyError::UnsupportedAngle(e)
    }
}

/// Outcome of a verification query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// The circuits are equivalent; the witness phase factor is recorded.
    Equivalent(PhaseFactor),
    /// No candidate phase factor verified; the circuits are considered not
    /// equivalent (for the searched phase-factor space this is definitive
    /// when the candidate list was derived from a nonzero amplitude).
    NotEquivalent,
}

impl Verdict {
    /// Returns `true` for [`Verdict::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Verdict::Equivalent(_))
    }
}

/// Why a class member failed re-verification against its representative in
/// [`Verifier::verify_class`].
#[derive(Debug, Clone, PartialEq)]
pub enum MemberFailure {
    /// The verifier decided the member is not equivalent to the
    /// representative (for the searched phase-factor space).
    NotEquivalent,
    /// The equivalence query itself was ill-formed (qubit-count mismatch,
    /// unrepresentable angle).
    Error(VerifyError),
}

impl fmt::Display for MemberFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemberFailure::NotEquivalent => write!(f, "not equivalent to the representative"),
            MemberFailure::Error(e) => write!(f, "query error: {e}"),
        }
    }
}

/// Result of re-verifying a whole equivalence class with
/// [`Verifier::verify_class`]: every member checked against the
/// representative (`circuits[0]`), all failures collected rather than
/// stopping at the first.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// Number of circuits in the class, representative included.
    pub members: usize,
    /// `(member index into the input slice, reason)` for every member that
    /// failed. Empty iff the class is sound.
    pub failures: Vec<(usize, MemberFailure)>,
}

impl ClassReport {
    /// Whether every member verified against the representative.
    pub fn is_sound(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Statistics accumulated by a [`Verifier`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifierStats {
    /// Total number of equivalence queries.
    pub queries: usize,
    /// Queries rejected by the numeric pre-filter.
    pub prefilter_rejections: usize,
    /// Number of exact symbolic checks performed (one per candidate tried).
    pub symbolic_checks: usize,
    /// Queries that returned [`Verdict::Equivalent`].
    pub verified_equivalent: usize,
}

/// The circuit equivalence verifier.
///
/// # Examples
///
/// ```
/// use quartz_ir::{Circuit, Gate, Instruction};
/// use quartz_verify::Verifier;
///
/// // H·H is equivalent to the empty circuit.
/// let mut hh = Circuit::new(1, 0);
/// hh.push(Instruction::new(Gate::H, vec![0], vec![]));
/// hh.push(Instruction::new(Gate::H, vec![0], vec![]));
/// let id = Circuit::new(1, 0);
///
/// let mut verifier = Verifier::default();
/// assert!(verifier.equivalent(&hh, &id).unwrap().is_equivalent());
/// ```
#[derive(Debug, Clone)]
pub struct Verifier {
    config: VerifierConfig,
    stats: VerifierStats,
}

impl Default for Verifier {
    fn default() -> Self {
        Verifier::new(VerifierConfig::default())
    }
}

impl Verifier {
    /// Creates a verifier with the given configuration.
    pub fn new(config: VerifierConfig) -> Self {
        Verifier {
            config,
            stats: VerifierStats::default(),
        }
    }

    /// Creates a verifier that searches parameter-dependent phase factors
    /// with coefficients in `{-max..=max}` (the paper's general mechanism).
    pub fn with_phase_coeff_range(max: i64) -> Self {
        Verifier::new(VerifierConfig {
            max_phase_coeff: max,
            ..VerifierConfig::default()
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &VerifierConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &VerifierStats {
        &self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = VerifierStats::default();
    }

    /// Decides whether `c1` and `c2` are equivalent up to a global phase
    /// (Definition 1).
    ///
    /// # Errors
    ///
    /// Returns an error if the circuits have different qubit counts or use
    /// angles outside the exactly representable set.
    pub fn equivalent(&mut self, c1: &Circuit, c2: &Circuit) -> Result<Verdict, VerifyError> {
        self.stats.queries += 1;
        if c1.num_qubits() != c2.num_qubits() {
            return Err(VerifyError::QubitCountMismatch(
                c1.num_qubits(),
                c2.num_qubits(),
            ));
        }
        let num_params = c1.num_params().max(c2.num_params());

        // Numeric pre-filter: equivalent circuits must have amplitudes of
        // equal modulus at every evaluation point.
        for point in 0..self.config.prefilter_points {
            let ctx = FingerprintContext::new(
                c1.num_qubits(),
                num_params,
                self.config.seed ^ (0x9E37 + point as u64 * 0x1234_5678),
            );
            let a1 = ctx.amplitude(c1).norm();
            let a2 = ctx.amplitude(c2).norm();
            if (a1 - a2).abs() > self.config.tolerance {
                self.stats.prefilter_rejections += 1;
                return Ok(Verdict::NotEquivalent);
            }
        }

        // Phase-factor candidate search (eq. 5) on a dedicated context.
        let ctx = FingerprintContext::new(c1.num_qubits(), num_params, self.config.seed);
        let candidates = candidate_phases(
            c1,
            c2,
            &ctx,
            num_params,
            self.config.max_phase_coeff,
            self.config.tolerance,
        );

        if candidates.is_empty() {
            return Ok(Verdict::NotEquivalent);
        }

        // Exact check of eq. (6) for each candidate.
        let u1 = symsem::circuit_unitary(c1)?;
        let u2 = symsem::circuit_unitary(c2)?;
        for phase in candidates {
            self.stats.symbolic_checks += 1;
            if Self::matrices_equal_with_phase(&u1, &u2, &phase) {
                self.stats.verified_equivalent += 1;
                return Ok(Verdict::Equivalent(phase));
            }
        }
        Ok(Verdict::NotEquivalent)
    }

    /// Convenience wrapper returning a plain boolean.
    ///
    /// # Errors
    ///
    /// Same as [`Verifier::equivalent`].
    pub fn check(&mut self, c1: &Circuit, c2: &Circuit) -> Result<bool, VerifyError> {
        Ok(self.equivalent(c1, c2)?.is_equivalent())
    }

    /// Re-verifies a whole equivalence class: every member of `circuits`
    /// is checked against the representative `circuits[0]`, phase-factor
    /// search included, and *all* failures are collected (the auditor wants
    /// every unsound member located, not just the first).
    ///
    /// Ill-formed queries (qubit-count mismatch, unrepresentable angles)
    /// are recorded as [`MemberFailure::Error`] on the offending member
    /// instead of aborting the class, so a single corrupt circuit cannot
    /// mask failures elsewhere in the class. An empty or single-circuit
    /// class is trivially sound.
    pub fn verify_class(&mut self, circuits: &[Circuit]) -> ClassReport {
        let mut failures = Vec::new();
        if let Some((rep, members)) = circuits.split_first() {
            for (offset, member) in members.iter().enumerate() {
                match self.equivalent(rep, member) {
                    Ok(Verdict::Equivalent(_)) => {}
                    Ok(Verdict::NotEquivalent) => {
                        failures.push((offset + 1, MemberFailure::NotEquivalent));
                    }
                    Err(e) => failures.push((offset + 1, MemberFailure::Error(e))),
                }
            }
        }
        ClassReport {
            members: circuits.len(),
            failures,
        }
    }

    /// Checks ⟦C₁⟧ = e^{iβ}·⟦C₂⟧ exactly, entry by entry.
    fn matrices_equal_with_phase(
        u1: &Matrix<Poly>,
        u2: &Matrix<Poly>,
        phase: &PhaseFactor,
    ) -> bool {
        let phase_poly = phase.to_poly();
        for (r, c, p1) in u1.entries() {
            let p2 = u2.get(r, c);
            let rhs = p2.mul(&phase_poly);
            if !p1.sub(&rhs).is_zero_mod_trig() {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quartz_ir::{Gate, Instruction, ParamExpr};

    fn instr(gate: Gate, qubits: &[usize]) -> Instruction {
        Instruction::new(gate, qubits.to_vec(), vec![])
    }

    fn rz(q: usize, p: usize, m: usize) -> Instruction {
        Instruction::new(Gate::Rz, vec![q], vec![ParamExpr::var(p, m)])
    }

    #[test]
    fn hh_equals_identity() {
        let mut hh = Circuit::new(1, 0);
        hh.push(instr(Gate::H, &[0]));
        hh.push(instr(Gate::H, &[0]));
        let id = Circuit::new(1, 0);
        let mut v = Verifier::default();
        assert!(v.check(&hh, &id).unwrap());
        assert_eq!(v.stats().queries, 1);
    }

    #[test]
    fn cnot_flip_with_hadamards() {
        // Figure 3a: H⊗H · CNOT(0→1) · H⊗H = CNOT(1→0).
        let mut lhs = Circuit::new(2, 0);
        lhs.push(instr(Gate::H, &[0]));
        lhs.push(instr(Gate::H, &[1]));
        lhs.push(instr(Gate::Cnot, &[0, 1]));
        lhs.push(instr(Gate::H, &[0]));
        lhs.push(instr(Gate::H, &[1]));
        let mut rhs = Circuit::new(2, 0);
        rhs.push(instr(Gate::Cnot, &[1, 0]));
        let mut v = Verifier::default();
        assert!(v.check(&lhs, &rhs).unwrap());
    }

    #[test]
    fn rz_commutes_through_cnot_on_control() {
        // Rz on the control commutes with CNOT.
        let m = 1;
        let mut a = Circuit::new(2, m);
        a.push(rz(0, 0, m));
        a.push(instr(Gate::Cnot, &[0, 1]));
        let mut b = Circuit::new(2, m);
        b.push(instr(Gate::Cnot, &[0, 1]));
        b.push(rz(0, 0, m));
        let mut v = Verifier::default();
        assert!(v.check(&a, &b).unwrap());
        // ... but Rz on the target does not.
        let mut c = Circuit::new(2, m);
        c.push(rz(1, 0, m));
        c.push(instr(Gate::Cnot, &[0, 1]));
        let mut d = Circuit::new(2, m);
        d.push(instr(Gate::Cnot, &[0, 1]));
        d.push(rz(1, 0, m));
        assert!(!v.check(&c, &d).unwrap());
    }

    #[test]
    fn u1_equals_rz_with_parameter_dependent_phase() {
        // U1(p0) = e^{i·p0/2}·Rz(p0): requires a parameter-dependent phase
        // factor with half-integer coefficient, which the integer-coefficient
        // search cannot express over p0 — but over the *expression* the
        // verifier searches coefficients of p0, so a coefficient is needed
        // that is not an integer. The paper's search space has the same
        // granularity; this pair is correctly reported NotEquivalent by the
        // constant-only verifier and serves as a regression test for the
        // distinction.
        let mut u1 = Circuit::new(1, 1);
        u1.push(Instruction::new(
            Gate::U1,
            vec![0],
            vec![ParamExpr::var(0, 1)],
        ));
        let mut rz_c = Circuit::new(1, 1);
        rz_c.push(rz(0, 0, 1));
        let mut v = Verifier::default();
        assert!(!v.check(&u1, &rz_c).unwrap());
        // With the scaled expression U1(2·p0) vs Rz(2·p0), the phase e^{i·p0}
        // has integer coefficient 1 and the pair verifies as equivalent.
        let mut u1_2 = Circuit::new(1, 1);
        u1_2.push(Instruction::new(
            Gate::U1,
            vec![0],
            vec![ParamExpr::scaled_var(0, 2, 1)],
        ));
        let mut rz_2 = Circuit::new(1, 1);
        rz_2.push(Instruction::new(
            Gate::Rz,
            vec![0],
            vec![ParamExpr::scaled_var(0, 2, 1)],
        ));
        let mut v2 = Verifier::with_phase_coeff_range(2);
        let verdict = v2.equivalent(&u1_2, &rz_2).unwrap();
        match verdict {
            Verdict::Equivalent(phase) => {
                assert_eq!(phase.param_coeffs, vec![1]);
                assert_eq!(phase.pi4_units, 0);
            }
            Verdict::NotEquivalent => panic!("U1(2p) and Rz(2p) must verify with phase e^{{ip}}"),
        }
    }

    #[test]
    fn t_gate_phase_constant() {
        // X·T·X·T — the famous identity X T X T = e^{iπ/4}·I ... actually
        // X·T·X = e^{iπ/4}·T†, so X T X T = e^{iπ/4} I. Verify against the
        // empty circuit with a constant phase factor.
        let mut lhs = Circuit::new(1, 0);
        lhs.push(instr(Gate::X, &[0]));
        lhs.push(instr(Gate::T, &[0]));
        lhs.push(instr(Gate::X, &[0]));
        lhs.push(instr(Gate::T, &[0]));
        let id = Circuit::new(1, 0);
        let mut v = Verifier::default();
        match v.equivalent(&lhs, &id).unwrap() {
            Verdict::Equivalent(phase) => assert_eq!(phase.pi4_units, 1),
            Verdict::NotEquivalent => panic!("XTXT should equal identity up to a π/4 phase"),
        }
    }

    #[test]
    fn config_digest_separates_configurations() {
        let base = VerifierConfig::default();
        assert_eq!(base.digest(), VerifierConfig::default().digest());
        let variants = [
            VerifierConfig {
                max_phase_coeff: 2,
                ..base.clone()
            },
            VerifierConfig {
                tolerance: 1e-9,
                ..base.clone()
            },
            VerifierConfig {
                prefilter_points: 0,
                ..base.clone()
            },
            VerifierConfig {
                seed: 1,
                ..base.clone()
            },
        ];
        for v in &variants {
            assert_ne!(v.digest(), base.digest(), "{v:?}");
        }
    }

    #[test]
    fn verify_class_collects_all_failures() {
        // Class {I, H·H, X, Y}: members 2 and 3 are unsound and must both
        // be reported; the H·H member stays clean.
        let id = Circuit::new(1, 0);
        let mut hh = Circuit::new(1, 0);
        hh.push(instr(Gate::H, &[0]));
        hh.push(instr(Gate::H, &[0]));
        let mut x = Circuit::new(1, 0);
        x.push(instr(Gate::X, &[0]));
        let mut y = Circuit::new(1, 0);
        y.push(instr(Gate::Y, &[0]));
        let mut v = Verifier::default();
        let report = v.verify_class(&[id.clone(), hh.clone(), x, y]);
        assert_eq!(report.members, 4);
        assert!(!report.is_sound());
        assert_eq!(
            report
                .failures
                .iter()
                .map(|(member, _)| *member)
                .collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert!(report
            .failures
            .iter()
            .all(|(_, f)| *f == MemberFailure::NotEquivalent));

        // A sound class and the trivial classes report clean.
        assert!(v.verify_class(&[id.clone(), hh]).is_sound());
        assert!(v.verify_class(&[id]).is_sound());
        assert!(v.verify_class(&[]).is_sound());
    }

    #[test]
    fn verify_class_records_query_errors_per_member() {
        // A qubit-count mismatch inside a class must localize to the
        // offending member, not abort the class.
        let id1 = Circuit::new(1, 0);
        let id2 = Circuit::new(2, 0);
        let mut x = Circuit::new(1, 0);
        x.push(instr(Gate::X, &[0]));
        let mut v = Verifier::default();
        let report = v.verify_class(&[id1.clone(), id2, x, id1]);
        assert_eq!(report.members, 4);
        assert_eq!(report.failures.len(), 2);
        assert_eq!(report.failures[0].0, 1);
        assert!(matches!(
            report.failures[0].1,
            MemberFailure::Error(VerifyError::QubitCountMismatch(1, 2))
        ));
        assert_eq!(report.failures[1], (2, MemberFailure::NotEquivalent));
    }

    #[test]
    fn different_qubit_counts_are_an_error() {
        let a = Circuit::new(1, 0);
        let b = Circuit::new(2, 0);
        let mut v = Verifier::default();
        assert!(matches!(
            v.equivalent(&a, &b),
            Err(VerifyError::QubitCountMismatch(1, 2))
        ));
    }

    #[test]
    fn prefilter_rejects_obviously_different_circuits() {
        let mut x = Circuit::new(1, 0);
        x.push(instr(Gate::X, &[0]));
        let id = Circuit::new(1, 0);
        let mut v = Verifier::default();
        assert!(!v.check(&x, &id).unwrap());
        assert!(v.stats().prefilter_rejections >= 1 || v.stats().symbolic_checks == 0);
    }

    #[test]
    fn swap_as_three_cnots() {
        let mut three = Circuit::new(2, 0);
        three.push(instr(Gate::Cnot, &[0, 1]));
        three.push(instr(Gate::Cnot, &[1, 0]));
        three.push(instr(Gate::Cnot, &[0, 1]));
        let mut swap = Circuit::new(2, 0);
        swap.push(instr(Gate::Swap, &[0, 1]));
        let mut v = Verifier::default();
        assert!(v.check(&three, &swap).unwrap());
    }

    #[test]
    fn rigetti_rx_pi_equals_x_up_to_phase() {
        let mut rx = Circuit::new(1, 0);
        rx.push(instr(Gate::Rx180, &[0]));
        let mut x = Circuit::new(1, 0);
        x.push(instr(Gate::X, &[0]));
        let mut v = Verifier::default();
        match v.equivalent(&rx, &x).unwrap() {
            Verdict::Equivalent(phase) => assert_eq!(phase.pi4_units.rem_euclid(8), 6),
            Verdict::NotEquivalent => panic!("Rx(π) equals X up to the phase −i"),
        }
    }
}
