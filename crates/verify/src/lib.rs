//! # quartz-verify
//!
//! The circuit equivalence verifier of the Quartz superoptimizer
//! reproduction (paper §4).
//!
//! Two symbolic circuits are equivalent (Definition 1) when, for every
//! assignment of the parameters, their unitaries differ only by a global
//! phase. The verifier:
//!
//! 1. searches a finite space of linear phase factors β(p⃗) = a⃗·p⃗ + b by
//!    numeric evaluation at a random point ([`candidate_phases`], eq. 5), and
//! 2. checks each candidate *exactly* by comparing the circuits' symbolic
//!    unitaries — matrices of polynomials over ℚ(ζ₈) — modulo the
//!    trigonometric ideal ([`Verifier`], eq. 6).
//!
//! Step 2 plays the role of the Z3 query in the original system; for the
//! class of verification conditions Quartz generates it is a sound and
//! complete decision procedure (see `quartz_math::Poly`).
//!
//! # Example
//!
//! ```
//! use quartz_ir::{Circuit, Gate, Instruction, ParamExpr};
//! use quartz_verify::Verifier;
//!
//! // Two Rz rotations on the same qubit fuse: Rz(p0)·Rz(p1) ≡ Rz(p0+p1).
//! let m = 2;
//! let mut two = Circuit::new(1, m);
//! two.push(Instruction::new(Gate::Rz, vec![0], vec![ParamExpr::var(0, m)]));
//! two.push(Instruction::new(Gate::Rz, vec![0], vec![ParamExpr::var(1, m)]));
//! let mut fused = Circuit::new(1, m);
//! fused.push(Instruction::new(Gate::Rz, vec![0], vec![ParamExpr::sum_vars(0, 1, m)]));
//!
//! let mut verifier = Verifier::default();
//! assert!(verifier.check(&two, &fused).unwrap());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod phase;
pub mod symsem;
mod verifier;

pub use phase::{candidate_phases, PhaseFactor};
pub use verifier::{
    ClassReport, MemberFailure, Verdict, Verifier, VerifierConfig, VerifierStats, VerifyError,
};
