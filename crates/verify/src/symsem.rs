//! Exact symbolic semantics: a circuit's unitary as a matrix of polynomials
//! over ℚ(ζ₈) in the cos/sin of the half-parameters (paper §4).

use quartz_ir::{Circuit, Instruction, UnsupportedAngleError};
use quartz_math::{Matrix, Poly};

/// Computes the full 2ⁿ×2ⁿ symbolic unitary of a single instruction embedded
/// into a circuit over `num_qubits` qubits.
///
/// # Errors
///
/// Returns an error if a parameter expression cannot be represented exactly
/// (see [`quartz_ir::ParamExpr::half_angle`]).
pub fn instruction_unitary(
    instr: &Instruction,
    num_qubits: usize,
) -> Result<Matrix<Poly>, UnsupportedAngleError> {
    let local = instr.gate.symbolic_matrix(&instr.params)?;
    let dim = 1usize << num_qubits;
    let k = instr.gate.num_qubits();
    let local_dim = 1usize << k;
    let qubits = &instr.qubits;
    let mask: usize = qubits.iter().map(|&q| 1usize << q).sum();

    let mut full: Matrix<Poly> = Matrix::zeros(dim, dim);
    for col in 0..dim {
        let rest = col & !mask;
        let mut local_col = 0usize;
        for (t, &q) in qubits.iter().enumerate() {
            if (col >> q) & 1 == 1 {
                local_col |= 1 << t;
            }
        }
        for local_row in 0..local_dim {
            let entry = local.get(local_row, local_col);
            if entry.is_zero() {
                continue;
            }
            let mut row = rest;
            for (t, &q) in qubits.iter().enumerate() {
                if (local_row >> t) & 1 == 1 {
                    row |= 1 << q;
                }
            }
            full[(row, col)] = entry.clone();
        }
    }
    Ok(full)
}

/// Computes the full symbolic unitary ⟦C⟧ of a circuit as a matrix of
/// polynomials.
///
/// The composition follows the paper's semantics: sequential gates multiply,
/// parallel gates tensor (realized here by embedding each gate into the full
/// qubit space and multiplying in sequence order).
///
/// # Errors
///
/// Returns an error if any instruction's parameters cannot be represented
/// exactly.
pub fn circuit_unitary(circuit: &Circuit) -> Result<Matrix<Poly>, UnsupportedAngleError> {
    let dim = 1usize << circuit.num_qubits();
    let mut total: Matrix<Poly> = Matrix::identity(dim);
    for instr in circuit.instructions() {
        let u = instruction_unitary(instr, circuit.num_qubits())?;
        // The instruction acts after everything already accumulated.
        total = u.matmul(&total);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quartz_ir::{circuit_unitary as numeric_unitary, Circuit, Gate, Instruction, ParamExpr};
    use quartz_math::Complex64;

    fn check_against_numeric(circuit: &Circuit, params: &[f64]) {
        let sym = circuit_unitary(circuit).expect("symbolic unitary");
        let num = numeric_unitary(circuit, params);
        let halves: Vec<f64> = params.iter().map(|p| p / 2.0).collect();
        for (r, c, p) in sym.entries() {
            let v = p.eval_f64(&halves);
            assert!(
                v.approx_eq(*num.get(r, c), 1e-9),
                "entry ({r},{c}): symbolic {v} vs numeric {}",
                num.get(r, c)
            );
        }
    }

    #[test]
    fn bell_circuit_matches_numeric() {
        let mut c = Circuit::new(2, 0);
        c.push(Instruction::new(Gate::H, vec![0], vec![]));
        c.push(Instruction::new(Gate::Cnot, vec![0, 1], vec![]));
        check_against_numeric(&c, &[]);
    }

    #[test]
    fn parametric_circuit_matches_numeric() {
        let mut c = Circuit::new(2, 2);
        c.push(Instruction::new(
            Gate::Rz,
            vec![0],
            vec![ParamExpr::var(0, 2)],
        ));
        c.push(Instruction::new(Gate::H, vec![1], vec![]));
        c.push(Instruction::new(Gate::Cnot, vec![1, 0], vec![]));
        c.push(Instruction::new(
            Gate::Rz,
            vec![1],
            vec![ParamExpr::var(1, 2)],
        ));
        for params in [[0.3, -1.2], [0.0, 0.0], [2.5, 0.7]] {
            check_against_numeric(&c, &params);
        }
    }

    #[test]
    fn three_qubit_toffoli_matches_numeric() {
        let mut c = Circuit::new(3, 0);
        c.push(Instruction::new(Gate::Ccx, vec![2, 0, 1], vec![]));
        c.push(Instruction::new(Gate::H, vec![1], vec![]));
        check_against_numeric(&c, &[]);
    }

    #[test]
    fn empty_circuit_is_identity() {
        let c = Circuit::new(2, 0);
        let u = circuit_unitary(&c).unwrap();
        for (r, c_idx, p) in u.entries() {
            let expected = if r == c_idx {
                Complex64::one()
            } else {
                Complex64::zero()
            };
            assert!(p.eval_f64(&[]).approx_eq(expected, 1e-12));
        }
    }

    #[test]
    fn gate_order_matters() {
        // X then H is not the same as H then X on the same qubit.
        let mut xh = Circuit::new(1, 0);
        xh.push(Instruction::new(Gate::X, vec![0], vec![]));
        xh.push(Instruction::new(Gate::H, vec![0], vec![]));
        let mut hx = Circuit::new(1, 0);
        hx.push(Instruction::new(Gate::H, vec![0], vec![]));
        hx.push(Instruction::new(Gate::X, vec![0], vec![]));
        let a = circuit_unitary(&xh).unwrap();
        let b = circuit_unitary(&hx).unwrap();
        let diff_is_zero = a
            .entries()
            .all(|(r, c, p)| p.sub(b.get(r, c)).is_zero_mod_trig());
        assert!(!diff_is_zero);
    }
}
