//! Counting all possible circuit sequences (the "Possible Circuits" column
//! of paper Table 6) without enumerating them.
//!
//! The count is over sequence representations: every sequence of at most `n`
//! instructions drawn from the gate set over `q` qubits whose parameter
//! expressions respect Σ (including the single-use restriction). A dynamic
//! program over the subset of already-used parameters makes the count cheap
//! even when the number of sequences runs into the billions.

use quartz_ir::{ExprSpec, GateSet};

/// Returns, for each `j = 0..=max_gates`, the number of valid sequences with
/// exactly `j` instructions.
pub fn count_sequences_by_size(
    gate_set: &GateSet,
    num_qubits: usize,
    spec: &ExprSpec,
    max_gates: usize,
) -> Vec<u128> {
    let instructions = gate_set.enumerate_instructions(num_qubits, spec);
    let m = spec.num_params;
    let num_subsets = 1usize << m;

    // instructions_per_subset[s] = number of single instructions whose used
    // parameters are exactly the subset `s`.
    let mut instructions_per_subset = vec![0u128; num_subsets];
    for instr in &instructions {
        let mut mask = 0usize;
        for p in instr.used_params() {
            mask |= 1 << p;
        }
        instructions_per_subset[mask] += 1;
    }

    // dp[s] = number of sequences of the current length whose used-parameter
    // set is exactly `s`.
    let mut dp = vec![0u128; num_subsets];
    dp[0] = 1;
    let mut result = Vec::with_capacity(max_gates + 1);
    result.push(1u128); // the empty sequence
    for _ in 1..=max_gates {
        let mut next = vec![0u128; num_subsets];
        for (used, &count) in dp.iter().enumerate() {
            if count == 0 {
                continue;
            }
            for (instr_mask, &instr_count) in instructions_per_subset.iter().enumerate() {
                if instr_count == 0 {
                    continue;
                }
                if spec.single_use && (used & instr_mask) != 0 {
                    continue;
                }
                next[used | instr_mask] += count * instr_count;
            }
        }
        result.push(next.iter().sum());
        dp = next;
    }
    result
}

/// Total number of valid sequences with at most `max_gates` instructions
/// (the "Possible Circuits" column of Table 6, which includes the empty
/// sequence).
pub fn count_possible_circuits(
    gate_set: &GateSet,
    num_qubits: usize,
    spec: &ExprSpec,
    max_gates: usize,
) -> u128 {
    count_sequences_by_size(gate_set, num_qubits, spec, max_gates)
        .iter()
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use quartz_ir::GateSet;

    #[test]
    fn nam_counts_match_paper_table_6() {
        // Paper Table 6, Nam gate set, q = 3, m = 2:
        // n = 2 → 604, n = 3 → 11,404, n = 4 → 198,028.
        let spec = ExprSpec::standard(2);
        let nam = GateSet::nam();
        assert_eq!(count_possible_circuits(&nam, 3, &spec, 2), 604);
        assert_eq!(count_possible_circuits(&nam, 3, &spec, 3), 11_404);
        assert_eq!(count_possible_circuits(&nam, 3, &spec, 4), 198_028);
        assert_eq!(count_possible_circuits(&nam, 3, &spec, 7), 776_616_076);
    }

    #[test]
    fn rigetti_counts_match_paper_table_6() {
        // Paper Table 6, Rigetti gate set, q = 3, m = 2: n = 2 → 778,
        // n = 5 → 7,354,093.
        let spec = ExprSpec::standard(2);
        let rigetti = GateSet::rigetti();
        assert_eq!(count_possible_circuits(&rigetti, 3, &spec, 2), 778);
        assert_eq!(count_possible_circuits(&rigetti, 3, &spec, 5), 7_354_093);
    }

    #[test]
    fn ibm_counts_match_paper_table_6() {
        // Paper Table 6, IBM gate set, q = 3, m = 4: n = 2 → 35,005,
        // n = 4 → 6,446,209.
        let spec = ExprSpec::standard(4);
        let ibm = GateSet::ibm();
        assert_eq!(count_possible_circuits(&ibm, 3, &spec, 2), 35_005);
        assert_eq!(count_possible_circuits(&ibm, 3, &spec, 4), 6_446_209);
    }

    #[test]
    fn per_size_counts_sum_to_total() {
        let spec = ExprSpec::standard(2);
        let nam = GateSet::nam();
        let by_size = count_sequences_by_size(&nam, 2, &spec, 3);
        assert_eq!(by_size[0], 1);
        assert_eq!(by_size[1], 16); // characteristic for q = 2
        assert_eq!(
            by_size.iter().sum::<u128>(),
            count_possible_circuits(&nam, 2, &spec, 3)
        );
    }

    #[test]
    fn without_single_use_restriction_counts_are_larger() {
        let mut spec = ExprSpec::standard(2);
        let restricted = count_possible_circuits(&GateSet::nam(), 2, &spec, 3);
        spec.single_use = false;
        let unrestricted = count_possible_circuits(&GateSet::nam(), 2, &spec, 3);
        assert!(unrestricted > restricted);
    }
}
