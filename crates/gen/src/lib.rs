//! # quartz-gen
//!
//! The circuit generator of the Quartz superoptimizer reproduction:
//! the RepGen algorithm (paper §3), equivalent circuit classes, and the
//! pruning passes of §5.
//!
//! * [`Generator`] runs Algorithm 1 for a gate set, producing an
//!   (n, q)-complete [`EccSet`] together with [`GenStats`] (the metrics of
//!   paper Tables 5, 6 and 8).
//! * [`prune`] applies ECC simplification and common-subcircuit pruning.
//! * [`count_possible_circuits`] computes the brute-force sequence counts the
//!   paper compares against in Table 6.
//!
//! # Example
//!
//! ```
//! use quartz_gen::{Generator, GenConfig, prune};
//! use quartz_ir::GateSet;
//!
//! let (ecc_set, stats) = Generator::new(
//!     GateSet::nam(),
//!     GenConfig::standard(2, 2, 1),
//! ).run();
//! let (pruned, prune_stats) = prune(&ecc_set);
//! assert!(pruned.num_transformations() <= ecc_set.num_transformations());
//! assert!(stats.circuits_considered > 0);
//! assert!(prune_stats.circuits_before >= prune_stats.circuits_after_common_subcircuit);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod count;
mod ecc;
mod json;
mod prune;
mod repgen;

pub use count::{count_possible_circuits, count_sequences_by_size};
pub use ecc::{Ecc, EccSet};
pub use prune::{prune, prune_common_subcircuits, simplify_eccs, PruneStats};
pub use repgen::{GenConfig, GenStats, Generator};
