//! # quartz-gen
//!
//! The circuit generator of the Quartz superoptimizer reproduction:
//! the RepGen algorithm (paper §3), equivalent circuit classes, the pruning
//! passes of §5, and the *persisted transformation library* layer that makes
//! generation a one-time offline cost.
//!
//! * [`Generator`] runs Algorithm 1 for a gate set, producing an
//!   (n, q)-complete [`EccSet`] together with [`GenStats`] (the metrics of
//!   paper Tables 5, 6 and 8).
//! * [`prune`] applies ECC simplification and common-subcircuit pruning.
//! * [`transformations_from_ecc_set`] extracts the optimizer's rewrite-rule
//!   list from a set, and [`TransformationIndex`] is the anchor-bucket +
//!   histogram dispatch index built over it (DESIGN.md §2.2).
//! * [`Library`] persists a set — and optionally its prebuilt index — as a
//!   versioned, checksummed `QTZL` binary artifact (DESIGN.md §7) that
//!   loads in milliseconds; the `quartz-lib` CLI
//!   (`cargo run -p quartz-gen --bin quartz-lib`) packs, inspects and
//!   verifies artifacts.
//! * [`count_possible_circuits`] computes the brute-force sequence counts the
//!   paper compares against in Table 6.
//!
//! # Example
//!
//! ```
//! use quartz_gen::{Generator, GenConfig, prune, Library};
//! use quartz_ir::GateSet;
//!
//! let (ecc_set, stats) = Generator::new(
//!     GateSet::nam(),
//!     GenConfig::standard(2, 2, 1),
//! ).run();
//! let (pruned, prune_stats) = prune(&ecc_set);
//! assert!(pruned.num_transformations() <= ecc_set.num_transformations());
//! assert!(stats.circuits_considered > 0);
//! assert!(prune_stats.circuits_before >= prune_stats.circuits_after_common_subcircuit);
//!
//! // Persist the pruned set (plus its prebuilt dispatch index) as a binary
//! // artifact and load it back without regenerating anything.
//! let artifact = Library::new(GateSet::nam().name(), pruned.clone(), true).to_bytes();
//! let loaded = Library::from_bytes(&artifact).unwrap();
//! assert_eq!(loaded.ecc_set(), &pruned);
//! assert!(loaded.index().is_some());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
mod count;
mod ecc;
mod index;
mod json;
mod lazy;
mod library;
mod prune;
mod registry;
mod repgen;
mod xform;

pub use audit::{
    class_digest, AuditConfig, AuditReport, AuditStamp, Auditor, Diagnostic, Location, RuleCode,
    Severity,
};
pub use count::{count_possible_circuits, count_sequences_by_size};
pub use ecc::{Ecc, EccSet};
pub use index::{IndexScratch, TransformationIndex};
pub use lazy::{assemble_index, merge_shards, shard_library, LazyLibrary};
pub use library::{
    artifact_checksum, checksum64, class_payload_digest, path_io_error, ClassEntry, ClassTable,
    Library, LibraryError, LibraryHeader, LibraryReader, FORMAT_VERSION, FORMAT_VERSION_V2,
    GENERATOR_VERSION, HEADER_LEN, MAGIC,
};
pub use prune::{prune, prune_common_subcircuits, simplify_eccs, PruneStats};
pub use registry::{Registry, RegistryEntry, RegistryKey};
pub use repgen::{GenConfig, GenStats, Generator};
pub use xform::{transformations_from_ecc_set, transformations_with_provenance, Transformation};
