//! The RepGen circuit generation algorithm (paper §3, Algorithm 1).
//!
//! RepGen builds an (n, q)-complete ECC set round by round: the j-th round
//! extends the representatives of size j−1 by a single instruction, keeps
//! only extensions whose `DropFirst` is itself a representative, buckets the
//! results by fingerprint, and partitions each bucket into verified ECCs
//! (Eccify) using the exact equivalence verifier.

use crate::ecc::{Ecc, EccSet};
use quartz_ir::{Circuit, ExprSpec, FingerprintContext, GateSet};
use quartz_verify::{Verifier, VerifierConfig};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Configuration for a RepGen run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenConfig {
    /// Maximum number of gates `n`.
    pub max_gates: usize,
    /// Number of qubits `q`.
    pub num_qubits: usize,
    /// Number of formal parameters `m`.
    pub num_params: usize,
    /// The parameter-expression specification Σ.
    pub spec: ExprSpec,
    /// Seed for the fingerprint inputs.
    pub seed: u64,
    /// Absolute error threshold E_max for fingerprint bucketing (§7.1).
    pub e_max: f64,
    /// Verifier configuration.
    pub verifier: VerifierConfig,
}

impl GenConfig {
    /// Standard configuration for the paper's experiments: the Σ of §7.1,
    /// E_max = 10⁻¹⁵, constant phase factors.
    pub fn standard(max_gates: usize, num_qubits: usize, num_params: usize) -> Self {
        GenConfig {
            max_gates,
            num_qubits,
            num_params,
            spec: ExprSpec::standard(num_params),
            seed: 20220613,
            e_max: 1e-15,
            verifier: VerifierConfig::default(),
        }
    }
}

/// Statistics reported for a RepGen run (paper Tables 5, 6 and 8).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GenStats {
    /// Number of circuits (sequences) stored in the fingerprint database —
    /// the "RepGen" column of Table 6.
    pub circuits_considered: usize,
    /// Size of the final representative set |Rₙ| (Table 5), including
    /// singleton-class representatives.
    pub num_representatives: usize,
    /// Number of transformations |T| in the returned ECC set (Table 5).
    pub num_transformations: usize,
    /// The characteristic ch(G, Σ, q, m) (§3.3).
    pub characteristic: usize,
    /// Wall-clock time spent inside the equivalence verifier.
    pub verification_time: Duration,
    /// Total wall-clock generation time.
    pub total_time: Duration,
    /// Number of verifier queries issued.
    pub verifier_queries: usize,
    /// Per-round sizes of the ECC set (number of classes after round j).
    pub eccs_per_round: Vec<usize>,
}

/// The RepGen generator.
///
/// # Examples
///
/// ```
/// use quartz_gen::{Generator, GenConfig};
/// use quartz_ir::GateSet;
///
/// // A tiny (2, 2)-complete ECC set for the Nam gate set with one parameter.
/// let config = GenConfig::standard(2, 2, 1);
/// let (ecc_set, stats) = Generator::new(GateSet::nam(), config).run();
/// assert!(ecc_set.num_transformations() > 0);
/// assert!(stats.num_representatives > 0);
/// ```
#[derive(Debug)]
pub struct Generator {
    gate_set: GateSet,
    config: GenConfig,
}

impl Generator {
    /// Creates a generator for the given gate set and configuration.
    pub fn new(gate_set: GateSet, config: GenConfig) -> Self {
        Generator { gate_set, config }
    }

    /// The gate set being explored.
    pub fn gate_set(&self) -> &GateSet {
        &self.gate_set
    }

    /// Runs Algorithm 1 and returns the (n, q)-complete ECC set (with
    /// singleton classes removed, as in line 17) together with statistics.
    pub fn run(&self) -> (EccSet, GenStats) {
        let start = Instant::now();
        let cfg = &self.config;
        let ctx = FingerprintContext::new(cfg.num_qubits, cfg.num_params, cfg.seed);
        let mut verifier = Verifier::new(cfg.verifier.clone());

        let instructions = self
            .gate_set
            .enumerate_instructions(cfg.num_qubits, &cfg.spec);
        let characteristic = instructions.len();

        // D: fingerprint key → ECC indices present in that bucket.
        // All ECCs (including singletons) live in `classes`; `circuit_class`
        // maps every stored circuit to its class index.
        let mut classes: Vec<Ecc> = Vec::new();
        let mut bucket_of_class: Vec<i64> = Vec::new();
        let mut buckets: HashMap<i64, Vec<usize>> = HashMap::new();
        let mut representatives: HashSet<Circuit> = HashSet::new();
        let mut verification_time = Duration::ZERO;
        let mut circuits_considered = 0usize;
        let mut eccs_per_round = Vec::new();

        // Initialize with the empty circuit.
        let empty = Circuit::new(cfg.num_qubits, cfg.num_params);
        let empty_key = self.fingerprint_key(&ctx, &empty);
        classes.push(Ecc::singleton(empty.clone()));
        bucket_of_class.push(empty_key);
        buckets.entry(empty_key).or_default().push(0);
        representatives.insert(empty.clone());
        circuits_considered += 1;

        for round in 1..=cfg.max_gates {
            // Step 1: construct circuits with `round` gates by extending the
            // representatives of size round−1.
            let mut new_circuits: Vec<(i64, Circuit)> = Vec::new();
            let reps_this_round: Vec<Circuit> = representatives
                .iter()
                .filter(|c| c.gate_count() == round - 1)
                .cloned()
                .collect();
            for rep in &reps_this_round {
                for instr in &instructions {
                    if cfg.spec.single_use && rep.params_conflict(&instr.used_params()) {
                        continue;
                    }
                    let extended = rep.appended(instr.clone());
                    if round >= 2 && !representatives.contains(&extended.drop_first()) {
                        continue;
                    }
                    let key = self.fingerprint_key(&ctx, &extended);
                    new_circuits.push((key, extended));
                }
            }

            // Step 2: Eccify. Process new circuits in ≺ order so that the
            // representative of any newly created class is its ≺-minimum.
            new_circuits.sort_by(|a, b| a.1.precedence_cmp(&b.1));
            for (key, circuit) in new_circuits {
                circuits_considered += 1;
                let mut assigned = false;
                // Candidate classes live in the same bucket or an adjacent
                // one (floating-point fingerprints of equivalent circuits may
                // straddle a bucket boundary, §7.1).
                'outer: for candidate_key in [key, key - 1, key + 1] {
                    if let Some(class_indices) = buckets.get(&candidate_key) {
                        for &ci in class_indices {
                            let rep = classes[ci].representative().clone();
                            let t0 = Instant::now();
                            let equal = verifier.check(&rep, &circuit).unwrap_or(false);
                            verification_time += t0.elapsed();
                            if equal {
                                classes[ci].insert(circuit.clone());
                                assigned = true;
                                break 'outer;
                            }
                        }
                    }
                }
                if !assigned {
                    let ci = classes.len();
                    classes.push(Ecc::singleton(circuit.clone()));
                    bucket_of_class.push(key);
                    buckets.entry(key).or_default().push(ci);
                    representatives.insert(circuit);
                }
            }
            eccs_per_round.push(classes.len());
        }

        let mut result = EccSet::new(cfg.num_qubits, cfg.num_params);
        result.eccs = classes
            .iter()
            .filter(|e| !e.is_singleton())
            .cloned()
            .collect();

        let stats = GenStats {
            circuits_considered,
            num_representatives: representatives.len(),
            num_transformations: result.num_transformations(),
            characteristic,
            verification_time,
            total_time: start.elapsed(),
            verifier_queries: verifier.stats().queries,
            eccs_per_round,
        };
        let _ = bucket_of_class; // retained for symmetry with the paper's D
        (result, stats)
    }

    fn fingerprint_key(&self, ctx: &FingerprintContext, circuit: &Circuit) -> i64 {
        let fp = ctx.fingerprint(circuit);
        (fp / (2.0 * self.config.e_max)).floor() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quartz_ir::{equivalent_up_to_phase, Gate};

    fn run(gate_set: GateSet, n: usize, q: usize, m: usize) -> (EccSet, GenStats) {
        Generator::new(gate_set, GenConfig::standard(n, q, m)).run()
    }

    #[test]
    fn single_qubit_clifford_discovers_hh_identity() {
        let gs = GateSet::new("HX", vec![Gate::H, Gate::X]);
        let (set, stats) = run(gs, 2, 1, 0);
        // H·H ≡ empty and X·X ≡ empty must both be discovered: the ECC whose
        // representative is the empty circuit has at least 3 members.
        let empty_class = set
            .eccs
            .iter()
            .find(|e| e.representative().is_empty())
            .expect("class of the empty circuit");
        assert!(empty_class.len() >= 3, "found {}", empty_class.len());
        assert!(stats.num_representatives >= 3);
        assert_eq!(stats.characteristic, 2);
    }

    #[test]
    fn all_members_of_each_class_are_equivalent() {
        let (set, _) = run(GateSet::nam(), 2, 2, 1);
        let params = [0.873];
        for ecc in &set.eccs {
            let rep = ecc.representative();
            for c in ecc.circuits() {
                assert!(
                    equivalent_up_to_phase(rep, c, &params, 1e-8),
                    "members of an ECC must be equivalent:\n  {rep}\n  {c}"
                );
            }
        }
    }

    #[test]
    fn nam_2_3_shape_matches_paper() {
        // Paper Table 5 reports |R_n| = 397 and |T| = 62 for the Nam gate
        // set with q = 3, n = 2, m = 2 (after its pruning passes). The raw
        // RepGen output here must land in the same ballpark: far fewer
        // representatives than the 604 possible sequences, and a nonzero but
        // small transformation count.
        let (set, stats) = run(GateSet::nam(), 2, 3, 2);
        assert_eq!(stats.characteristic, 27);
        assert!(stats.num_representatives > 100 && stats.num_representatives <= 604);
        assert!(set.num_transformations() > 0);
        assert!(set.num_transformations() < 1000);
        // Every ECC contains circuits of at most 2 gates.
        assert!(set
            .eccs
            .iter()
            .all(|e| e.circuits().iter().all(|c| c.gate_count() <= 2)));
    }

    #[test]
    fn representative_is_smallest_member() {
        let (set, _) = run(GateSet::nam(), 2, 2, 1);
        for ecc in &set.eccs {
            for c in ecc.circuits() {
                assert!(!c.precedes(ecc.representative()));
            }
        }
    }

    #[test]
    fn stats_are_consistent() {
        let (set, stats) = run(GateSet::rigetti(), 2, 2, 1);
        assert_eq!(stats.num_transformations, set.num_transformations());
        assert!(stats.circuits_considered >= stats.num_representatives);
        assert!(stats.total_time >= stats.verification_time);
        assert_eq!(stats.eccs_per_round.len(), 2);
    }
}
