//! A content-addressed on-disk library registry (DESIGN.md §12.4).
//!
//! Committed fixtures under `libraries/` were the right distribution
//! channel for three quick-scale artifacts; a fleet serving many gate sets
//! at paper scale wants a *registry*: artifacts published once, fetched by
//! what they are — `(gate set, n, q, m, generator version)` — and verified
//! every time they are handed out. This module is that registry:
//!
//! ```text
//! <root>/
//!   blobs/<artifact checksum, 16 hex digits>.qtzl        content-addressed
//!   blobs/<checksum>.qtzl.audit                          sidecar, if published
//!   keys/<gate set>_n<n>_q<q>_m<m>_g<gv>/MANIFEST        key → blob pointer
//!   tmp/                                                 staging for renames
//! ```
//!
//! **Atomic publish protocol.** Every file lands via tempfile-in-`tmp/` +
//! `rename` — there is never a partially-written blob or manifest at its
//! final path. Blobs are content-addressed, so two processes racing to
//! publish the same artifact write byte-identical files and either rename
//! wins harmlessly; the key's `MANIFEST` is renamed last, so a reader
//! either sees the previous complete state or the new complete state,
//! never a torn one. [`Registry::get`] re-verifies every blob's integrity
//! (header, checksum, and — for v2 — every class and index digest, via
//! [`LazyLibrary::verify_all`]) before returning it, and retries once if a
//! concurrent `gc` swept a blob between the manifest read and the open.
//!
//! A manifest points at one whole artifact or at one complete shard group
//! ([`crate::shard_library`]); [`Registry::add`] validates the group before
//! publishing so a key can never resolve to half a library.

use crate::lazy::LazyLibrary;
use crate::library::{path_io_error, Library, LibraryError, LibraryHeader};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// What a library *is*, independent of where its bytes live: the generation
/// inputs that produced it. Two artifacts with the same key are
/// interchangeable (same generator version ⟹ same bytes, byte-identical
/// regeneration is CI-enforced).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RegistryKey {
    /// Gate set name, as recorded in the artifact header.
    pub gate_set: String,
    /// `n`: largest member-circuit gate count.
    pub max_gates: u32,
    /// `q`: number of qubits.
    pub num_qubits: u32,
    /// `m`: number of formal parameters.
    pub num_params: u32,
    /// Generator pipeline version ([`crate::GENERATOR_VERSION`]).
    pub generator_version: u32,
}

impl RegistryKey {
    /// Derives the key from an artifact header. Shards keep their parent's
    /// `(n, q, m)` precisely so this derivation is uniform across a group.
    pub fn from_header(header: &LibraryHeader) -> RegistryKey {
        RegistryKey {
            gate_set: header.gate_set.clone(),
            max_gates: header.max_gates,
            num_qubits: header.num_qubits,
            num_params: header.num_params,
            generator_version: header.generator_version,
        }
    }

    /// The key's directory name under `keys/`: lowercase gate set (non
    /// [a-z0-9] bytes folded to `-`) plus the numeric coordinates.
    pub fn dir_name(&self) -> String {
        let set: String = self
            .gate_set
            .chars()
            .map(|c| {
                let c = c.to_ascii_lowercase();
                if c.is_ascii_alphanumeric() {
                    c
                } else {
                    '-'
                }
            })
            .collect();
        format!(
            "{set}_n{}_q{}_m{}_g{}",
            self.max_gates, self.num_qubits, self.num_params, self.generator_version
        )
    }
}

impl fmt::Display for RegistryKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} n={} q={} m={} gen={}",
            self.gate_set, self.max_gates, self.num_qubits, self.num_params, self.generator_version
        )
    }
}

/// One key's published state, as read from its manifest.
#[derive(Debug, Clone)]
pub struct RegistryEntry {
    /// The key.
    pub key: RegistryKey,
    /// Number of artifacts behind the key (1 for a whole library, the
    /// shard-group size otherwise).
    pub shard_count: usize,
    /// Blob file names in shard-sequence order.
    pub blobs: Vec<String>,
}

/// Handle to a registry root directory. Cheap to clone; all methods take
/// `&self` and are safe to call from many threads and processes at once
/// (see the module docs for the publish protocol).
#[derive(Debug, Clone)]
pub struct Registry {
    root: PathBuf,
}

const MANIFEST_MAGIC: &str = "quartz-registry-manifest v1";

/// Distinguishes concurrently-staged temp files within one process; the
/// process id distinguishes across processes.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl Registry {
    /// Opens (creating if necessary) a registry rooted at `root`.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory layout, with the offending path in
    /// the message.
    pub fn open(root: impl Into<PathBuf>) -> Result<Registry, LibraryError> {
        let root = root.into();
        for dir in [
            root.clone(),
            root.join("blobs"),
            root.join("keys"),
            root.join("tmp"),
        ] {
            std::fs::create_dir_all(&dir).map_err(|e| LibraryError::Io(path_io_error(&dir, e)))?;
        }
        Ok(Registry { root })
    }

    /// The registry root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn blob_path(&self, name: &str) -> PathBuf {
        self.root.join("blobs").join(name)
    }

    fn manifest_path(&self, key: &RegistryKey) -> PathBuf {
        self.root.join("keys").join(key.dir_name()).join("MANIFEST")
    }

    /// Writes `bytes` to its final `path` atomically: staged in `tmp/`,
    /// then renamed into place.
    fn publish_file(&self, path: &Path, bytes: &[u8]) -> Result<(), LibraryError> {
        let stage = self.root.join("tmp").join(format!(
            "{}-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
            path.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default()
        ));
        std::fs::write(&stage, bytes).map_err(|e| LibraryError::Io(path_io_error(&stage, e)))?;
        std::fs::rename(&stage, path).map_err(|e| LibraryError::Io(path_io_error(path, e)))
    }

    /// Publishes one whole artifact or one complete shard group under its
    /// derived key. Every input is fully verified first (header, checksum,
    /// and all v2 digests); shard groups must be complete and
    /// mutually-consistent. Audit sidecars sitting next to the inputs are
    /// published alongside their blobs, so `--require-audited` loaders can
    /// fetch from the registry too.
    ///
    /// Returns the key the artifacts were published under.
    ///
    /// # Errors
    ///
    /// Validation failures on any input, key mismatches within the group,
    /// incomplete shard groups, and I/O errors (paths named).
    pub fn add(&self, paths: &[PathBuf]) -> Result<RegistryKey, LibraryError> {
        if paths.is_empty() {
            return Err(LibraryError::Malformed(
                "registry add needs at least one artifact".to_string(),
            ));
        }
        let mut key: Option<RegistryKey> = None;
        let mut entries: Vec<(u32, u32, u64, PathBuf, Vec<u8>)> = Vec::with_capacity(paths.len());
        let mut parent_checksum: Option<u64> = None;
        for path in paths {
            let bytes =
                std::fs::read(path).map_err(|e| LibraryError::Io(path_io_error(path, e)))?;
            let lazy = LazyLibrary::from_bytes(bytes.clone())?;
            lazy.verify_all()?;
            let header = lazy.header();
            let this_key = RegistryKey::from_header(header);
            match &key {
                None => key = Some(this_key),
                Some(k) if *k == this_key => {}
                Some(k) => {
                    return Err(LibraryError::Malformed(format!(
                        "{}: key {this_key} does not match the group's key {k}",
                        path.display()
                    )));
                }
            }
            let (seq, count, parent) = match lazy.class_table() {
                Some(t) if t.is_shard() => (t.shard_seq, t.shard_count, t.parent_checksum),
                _ => (0, 1, 0),
            };
            match parent_checksum {
                None => parent_checksum = Some(parent),
                Some(p) if p == parent => {}
                Some(_) => {
                    return Err(LibraryError::Malformed(format!(
                        "{}: shard belongs to a different parent artifact than the rest \
                         of the group",
                        path.display()
                    )));
                }
            }
            entries.push((seq, count, header.checksum, path.clone(), bytes));
        }
        let group_count = entries[0].1 as usize;
        if entries.len() != group_count {
            return Err(LibraryError::Malformed(format!(
                "group of {group_count} published with {} artifacts — a key must resolve to \
                 a whole library or a complete shard group",
                entries.len()
            )));
        }
        let mut seen = vec![false; group_count];
        for (seq, count, ..) in &entries {
            if *count as usize != group_count || *seq as usize >= group_count {
                return Err(LibraryError::Malformed(format!(
                    "inconsistent shard group: artifact claims shard {seq} of {count}, group \
                     has {group_count}"
                )));
            }
            if std::mem::replace(&mut seen[*seq as usize], true) {
                return Err(LibraryError::Malformed(format!(
                    "duplicate shard sequence {seq} in the published group"
                )));
            }
        }
        entries.sort_by_key(|(seq, ..)| *seq);

        // Publish blobs (and their audit sidecars) first, manifest last.
        let mut manifest = format!("{MANIFEST_MAGIC}\n");
        let key = key.expect("at least one artifact");
        manifest.push_str(&format!(
            "key {} {} {} {} {}\n",
            key.gate_set, key.max_gates, key.num_qubits, key.num_params, key.generator_version
        ));
        for (seq, count, checksum, src, bytes) in &entries {
            let blob_name = format!("{checksum:016x}.qtzl");
            self.publish_file(&self.blob_path(&blob_name), bytes)?;
            let sidecar = crate::audit::AuditStamp::sidecar_path(src);
            if let Ok(stamp) = std::fs::read(&sidecar) {
                self.publish_file(&self.blob_path(&format!("{blob_name}.audit")), &stamp)?;
            }
            manifest.push_str(&format!(
                "artifact {seq}/{count} {checksum:016x} {blob_name}\n"
            ));
        }
        let manifest_path = self.manifest_path(&key);
        let key_dir = manifest_path.parent().expect("manifest has a parent");
        std::fs::create_dir_all(key_dir)
            .map_err(|e| LibraryError::Io(path_io_error(key_dir, e)))?;
        self.publish_file(&manifest_path, manifest.as_bytes())?;
        Ok(key)
    }

    fn read_entry(&self, key: &RegistryKey) -> Result<RegistryEntry, LibraryError> {
        let path = self.manifest_path(key);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| LibraryError::Io(path_io_error(&path, e)))?;
        parse_manifest(&path, &text)
    }

    /// Resolves `key` to verified artifact paths, shard-sequence order.
    ///
    /// Every returned blob was re-verified *by this call* — header,
    /// checksum, and (v2) every class and index digest — so a corrupted
    /// registry file is reported here, not at some later lazy decode. A
    /// blob swept by a concurrent [`Registry::gc`] triggers one manifest
    /// re-read and retry before the miss is reported.
    ///
    /// # Errors
    ///
    /// An unknown key surfaces as [`LibraryError::Io`] (`NotFound`, naming
    /// the manifest path); corrupt blobs surface as their integrity error.
    pub fn get(&self, key: &RegistryKey) -> Result<Vec<PathBuf>, LibraryError> {
        let mut last_err = None;
        for _attempt in 0..2 {
            let entry = self.read_entry(key)?;
            match self.verify_entry_blobs(&entry) {
                Ok(paths) => return Ok(paths),
                // Retry only on a vanished blob (a gc/republish race); real
                // corruption must be reported immediately.
                Err(LibraryError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {
                    last_err = Some(LibraryError::Io(e));
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.expect("retry loop always records an error before exiting"))
    }

    fn verify_entry_blobs(&self, entry: &RegistryEntry) -> Result<Vec<PathBuf>, LibraryError> {
        let mut paths = Vec::with_capacity(entry.blobs.len());
        for blob in &entry.blobs {
            let path = self.blob_path(blob);
            let lazy = LazyLibrary::open(&path)?;
            lazy.verify_all()?;
            let named: Option<u64> = blob
                .strip_suffix(".qtzl")
                .and_then(|h| u64::from_str_radix(h, 16).ok());
            if named != Some(lazy.header().checksum) {
                return Err(LibraryError::Malformed(format!(
                    "{}: blob content (checksum {:#018x}) does not match its \
                     content-addressed name",
                    path.display(),
                    lazy.header().checksum
                )));
            }
            paths.push(path);
        }
        Ok(paths)
    }

    /// Lists every key currently published, with its blob layout.
    ///
    /// # Errors
    ///
    /// I/O errors walking `keys/` (paths named); malformed manifests.
    pub fn list(&self) -> Result<Vec<RegistryEntry>, LibraryError> {
        let keys_dir = self.root.join("keys");
        let mut entries = Vec::new();
        let dir = std::fs::read_dir(&keys_dir)
            .map_err(|e| LibraryError::Io(path_io_error(&keys_dir, e)))?;
        for key_dir in dir {
            let key_dir = key_dir.map_err(|e| LibraryError::Io(path_io_error(&keys_dir, e)))?;
            let path = key_dir.path().join("MANIFEST");
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                // A key directory without a manifest is a publish in flight;
                // skip it rather than failing the listing.
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(LibraryError::Io(path_io_error(&path, e))),
            };
            entries.push(parse_manifest(&path, &text)?);
        }
        entries.sort_by_key(|e| e.key.dir_name());
        Ok(entries)
    }

    /// Removes blobs no manifest references and clears leftover staging
    /// files. Returns the number of files removed.
    ///
    /// Concurrent `get`s are safe: a reader that raced the sweep re-reads
    /// the manifest and retries once, and a blob is only unreferenced if no
    /// *current* manifest points at it.
    ///
    /// # Errors
    ///
    /// I/O errors walking or removing files (paths named).
    pub fn gc(&self) -> Result<usize, LibraryError> {
        let referenced: std::collections::HashSet<String> = self
            .list()?
            .into_iter()
            .flat_map(|e| e.blobs)
            .flat_map(|b| [format!("{b}.audit"), b])
            .collect();
        let mut removed = 0usize;
        let blobs_dir = self.root.join("blobs");
        let dir = std::fs::read_dir(&blobs_dir)
            .map_err(|e| LibraryError::Io(path_io_error(&blobs_dir, e)))?;
        for file in dir {
            let file = file.map_err(|e| LibraryError::Io(path_io_error(&blobs_dir, e)))?;
            let name = file.file_name().to_string_lossy().into_owned();
            if !referenced.contains(&name) {
                let path = file.path();
                match std::fs::remove_file(&path) {
                    Ok(()) => removed += 1,
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(LibraryError::Io(path_io_error(&path, e))),
                }
            }
        }
        let tmp_dir = self.root.join("tmp");
        let dir = std::fs::read_dir(&tmp_dir)
            .map_err(|e| LibraryError::Io(path_io_error(&tmp_dir, e)))?;
        for file in dir {
            let file = file.map_err(|e| LibraryError::Io(path_io_error(&tmp_dir, e)))?;
            let path = file.path();
            match std::fs::remove_file(&path) {
                Ok(()) => removed += 1,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(LibraryError::Io(path_io_error(&path, e))),
            }
        }
        Ok(removed)
    }

    /// Convenience: publish an in-memory [`Library`] (used by tests and the
    /// bench driver). The artifact is staged to `tmp/` first so `add`'s
    /// validation and publish path is exercised unchanged.
    ///
    /// # Errors
    ///
    /// Same as [`Registry::add`].
    pub fn add_library(&self, library: &Library) -> Result<RegistryKey, LibraryError> {
        let stage = self.root.join("tmp").join(format!(
            "{}-{}-staged.qtzl",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        library.save(&stage).map_err(LibraryError::Io)?;
        let result = self.add(std::slice::from_ref(&stage));
        let _ = std::fs::remove_file(&stage);
        result
    }
}

fn parse_manifest(path: &Path, text: &str) -> Result<RegistryEntry, LibraryError> {
    let malformed = |what: &str| {
        LibraryError::Malformed(format!("{}: malformed manifest: {what}", path.display()))
    };
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_MAGIC) {
        return Err(malformed("bad magic line"));
    }
    let key_line = lines.next().ok_or_else(|| malformed("missing key line"))?;
    let mut parts = key_line.split_whitespace();
    if parts.next() != Some("key") {
        return Err(malformed("missing key line"));
    }
    let gate_set = parts
        .next()
        .ok_or_else(|| malformed("key line missing gate set"))?
        .to_string();
    let mut num = |what: &'static str| -> Result<u32, LibraryError> {
        parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| malformed(what))
    };
    let key = RegistryKey {
        gate_set,
        max_gates: num("key line missing n")?,
        num_qubits: num("key line missing q")?,
        num_params: num("key line missing m")?,
        generator_version: num("key line missing generator version")?,
    };
    let mut blobs = Vec::new();
    let mut shard_count = 1usize;
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some("artifact") {
            return Err(malformed("unexpected line"));
        }
        let seq_of = parts
            .next()
            .ok_or_else(|| malformed("artifact line missing sequence"))?;
        let (seq, count) = seq_of
            .split_once('/')
            .and_then(|(s, c)| Some((s.parse::<usize>().ok()?, c.parse::<usize>().ok()?)))
            .ok_or_else(|| malformed("artifact line has a malformed sequence"))?;
        if seq != i || count == 0 {
            return Err(malformed("artifact lines out of order"));
        }
        shard_count = count;
        let _checksum = parts
            .next()
            .ok_or_else(|| malformed("artifact line missing checksum"))?;
        blobs.push(
            parts
                .next()
                .ok_or_else(|| malformed("artifact line missing blob name"))?
                .to_string(),
        );
    }
    if blobs.is_empty() || blobs.len() != shard_count {
        return Err(malformed("artifact count does not match the group size"));
    }
    Ok(RegistryEntry {
        key,
        shard_count,
        blobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecc::{Ecc, EccSet};
    use quartz_ir::{Circuit, Gate, Instruction};

    fn sample_library(gate_set: &str) -> Library {
        let mut hh = Circuit::new(1, 0);
        hh.push(Instruction::new(Gate::H, vec![0], vec![]));
        hh.push(Instruction::new(Gate::H, vec![0], vec![]));
        let mut set = EccSet::new(1, 0);
        set.eccs.push(Ecc::new(vec![hh, Circuit::new(1, 0)]));
        Library::new(gate_set, set, true)
    }

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("quartz-registry-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn add_get_list_gc_round_trip() {
        let root = temp_root("roundtrip");
        let registry = Registry::open(&root).unwrap();
        let library = sample_library("Nam");
        let key = registry.add_library(&library).unwrap();
        assert_eq!(key, RegistryKey::from_header(library.header()));

        let paths = registry.get(&key).unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(std::fs::read(&paths[0]).unwrap(), library.to_bytes());

        let listed = registry.list().unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].key, key);
        assert_eq!(listed[0].shard_count, 1);

        // Nothing unreferenced yet; gc must keep the published blob.
        registry.gc().unwrap();
        assert_eq!(registry.get(&key).unwrap(), paths);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unknown_keys_and_corrupt_blobs_are_reported_with_paths() {
        let root = temp_root("missing");
        let registry = Registry::open(&root).unwrap();
        let key = RegistryKey {
            gate_set: "Nam".to_string(),
            max_gates: 9,
            num_qubits: 9,
            num_params: 9,
            generator_version: 1,
        };
        let err = registry.get(&key).unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains(&key.dir_name()),
            "error must name the manifest path, got: {message}"
        );

        let library = sample_library("Nam");
        let key = registry.add_library(&library).unwrap();
        let blob = registry.get(&key).unwrap().remove(0);
        let mut bytes = std::fs::read(&blob).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&blob, bytes).unwrap();
        assert!(
            registry.get(&key).is_err(),
            "corrupt blob must not be served"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn gc_sweeps_unreferenced_blobs_and_staging_leftovers() {
        let root = temp_root("gc");
        let registry = Registry::open(&root).unwrap();
        let key = registry.add_library(&sample_library("Nam")).unwrap();
        std::fs::write(root.join("blobs").join("dead.qtzl"), b"junk").unwrap();
        std::fs::write(root.join("tmp").join("stale"), b"junk").unwrap();
        let removed = registry.gc().unwrap();
        assert_eq!(removed, 2);
        assert!(registry.get(&key).is_ok(), "live blob must survive gc");
        let _ = std::fs::remove_dir_all(&root);
    }
}
