//! Indexed transformation dispatch (DESIGN.md §2.2, §8.2).
//!
//! The search dequeues a circuit and must decide which transformations to
//! attempt. The naive approach — run the pattern matcher for *every*
//! transformation — wastes most of its time on patterns that cannot possibly
//! match. [`TransformationIndex`] prunes that set with cheap filters before
//! any matching happens:
//!
//! 1. **Per-circuit re-anchoring.** Every transformation is reachable
//!    through a bucket for each gate type its target pattern uses. Candidate
//!    selection walks the circuit's present gate types *rarest first* (by
//!    this circuit's histogram, not a global frequency), so every
//!    transformation is examined exactly once — through the pattern gate
//!    that is most selective *for this circuit* — and a single count
//!    comparison on that gate rejects most of them before the full
//!    histogram check. Transformations none of whose pattern gates occur in
//!    the circuit are never touched at all.
//! 2. **Qubit-span filter.** A pattern using more distinct qubits than the
//!    circuit has wires cannot match; one integer comparison.
//! 3. **Histogram subsumption.** A pattern can only match a circuit when its
//!    gate-type multiset is a subset of the circuit's
//!    ([`quartz_ir::GateHistogram::is_subset_of`]). Candidates surviving the
//!    cheaper filters are checked against the circuit's
//!    incrementally-maintained histogram in O([`Gate::COUNT`]).
//!
//! All filters are *sound*: a skipped transformation is guaranteed to have
//! zero matches, so the surviving candidate list — returned in original
//! transformation order — produces exactly the same rewrites as the full
//! linear scan, and the search explores an identical state space.
//!
//! For the optimizer's match-site cache (DESIGN.md §8) the index also
//! answers the *dirty dispatch* query
//! ([`TransformationIndex::dirty_candidates_into`]): given the local
//! evidence a splice left behind — the inserted nodes' gate types and the
//! wire adjacencies it created — which transformations could possibly have
//! gained a match? Patterns are looked up by the ordered (predecessor,
//! successor) gate-type pairs on their wires, so a rewrite dispatches only
//! the handful of patterns that can actually straddle its footprint.
//!
//! The hot loop reuses an [`IndexScratch`] (an epoch-stamped visited set)
//! across dequeues so candidate selection allocates nothing in steady state.
//!
//! The index lives in `quartz-gen` (next to the ECC sets it is derived from)
//! so that persisted library artifacts ([`crate::library`], DESIGN.md §7)
//! can embed a *prebuilt* index section and services can skip both
//! generation and index construction at startup; the optimizer crate
//! re-exports it. The serialized form (per-pattern histograms + global
//! anchor buckets) is unchanged since format version 1: the per-circuit
//! metadata below is cheap and recomputed at load time.

use crate::xform::Transformation;
use quartz_ir::{FxHashMap, Gate, GateHistogram, ALL_GATES};

/// Per-pattern metadata precomputed at index construction.
#[derive(Debug, Clone)]
struct PatternMeta {
    /// Gate-type multiset of the target pattern.
    histogram: GateHistogram,
    /// Number of distinct qubits the pattern touches.
    qubit_span: u32,
    /// `true` when every pattern instruction after the first shares a wire
    /// with an earlier one — i.e. any match is a wire-connected subcircuit.
    /// Multi-gate connected patterns are dirty-dispatched purely by
    /// adjacency pairs; disconnected ones also answer to the inserted
    /// gate-type lookup (a lone component can bind an inserted node with no
    /// pattern-internal adjacency involved).
    connected: bool,
}

/// An ordered pair of gate types that are directly wire-adjacent somewhere
/// in a target pattern (predecessor type, successor type).
type GatePair = (u8, u8);

fn gate_pair(pred: Gate, succ: Gate) -> GatePair {
    (pred.index() as u8, succ.index() as u8)
}

/// Reusable scratch state for [`TransformationIndex::candidates_into`] /
/// [`TransformationIndex::dirty_candidates_into`]: an epoch-stamped visited
/// set plus a sort buffer, so the per-dequeue hot path allocates nothing
/// once warm. One scratch per thread; any scratch works with any index of
/// the same size (the visited stamps reset logically on every call).
#[derive(Debug, Default)]
pub struct IndexScratch {
    epoch: u32,
    stamp: Vec<u32>,
    /// (circuit count, gate) pairs, sorted ascending — the per-circuit
    /// rarity order of the present gate types.
    rarity: Vec<(u32, Gate)>,
}

impl IndexScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        IndexScratch::default()
    }

    /// Starts a new visit epoch over `n` transformation ids.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: clear stale stamps that might collide with epoch 0.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks `id` visited; returns `true` on first visit this epoch.
    fn visit(&mut self, id: usize) -> bool {
        if self.stamp[id] == self.epoch {
            false
        } else {
            self.stamp[id] = self.epoch;
            true
        }
    }
}

/// An index over a transformation library, grouping transformations by
/// pattern gate type and pattern gate-type multiset.
#[derive(Debug, Clone)]
pub struct TransformationIndex {
    transformations: Vec<Transformation>,
    metas: Vec<PatternMeta>,
    /// Transformation ids bucketed by *global* anchor gate index; each id
    /// appears in exactly one bucket. This is the assignment persisted in
    /// library artifacts (format version 1); dispatch itself re-anchors per
    /// circuit through `gate_buckets`.
    buckets: Vec<Vec<usize>>,
    /// Transformation ids bucketed by every gate type their pattern uses
    /// (multi-membership), each bucket ascending. Derived, never serialized.
    gate_buckets: Vec<Vec<usize>>,
    /// Transformation ids bucketed by every (predecessor, successor) gate
    /// type pair that is directly wire-adjacent in their pattern, each
    /// bucket ascending. The dirty-dispatch key for rewrites that bridge
    /// two old nodes together. Derived, never serialized. Keyed with the
    /// deterministic in-tree FxHash (`quartz_ir::fx`): this map sits on the
    /// dirty-dispatch hot path and its keys are tiny fixed-width pairs.
    pair_buckets: FxHashMap<GatePair, Vec<usize>>,
    /// Largest target-pattern gate count — an upper bound on how far (in
    /// wire hops) any match can extend from a node it binds.
    max_pattern_len: usize,
}

impl TransformationIndex {
    /// Builds the index. Transformations with an empty target pattern are
    /// rejected upstream (see [`crate::transformations_from_ecc_set`]); if
    /// one slips through it is bucketed under an arbitrary anchor and always
    /// attempted.
    pub fn new(transformations: Vec<Transformation>) -> Self {
        // Global frequency of each gate type across all target patterns,
        // used to pick the most selective anchor per pattern.
        let mut global_counts = [0usize; Gate::COUNT];
        for xform in &transformations {
            for instr in xform.target.instructions() {
                global_counts[instr.gate.index()] += 1;
            }
        }
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); Gate::COUNT];
        for (id, xform) in transformations.iter().enumerate() {
            let anchor = xform
                .target
                .instructions()
                .iter()
                .map(|i| i.gate)
                .min_by_key(|g| (global_counts[g.index()], g.index()))
                .unwrap_or(Gate::H);
            buckets[anchor.index()].push(id);
        }
        TransformationIndex::assemble(transformations, buckets)
    }

    /// Computes the derived per-pattern metadata and gate buckets shared by
    /// every constructor (fresh build and artifact load alike).
    fn assemble(transformations: Vec<Transformation>, buckets: Vec<Vec<usize>>) -> Self {
        let mut metas = Vec::with_capacity(transformations.len());
        let mut gate_buckets: Vec<Vec<usize>> = vec![Vec::new(); Gate::COUNT];
        let mut pair_buckets: FxHashMap<GatePair, Vec<usize>> = FxHashMap::default();
        let mut max_pattern_len = 0usize;
        for (id, xform) in transformations.iter().enumerate() {
            let target = &xform.target;
            let histogram = *target.gate_histogram();
            let mut gate_mask = 0u32;
            let mut qubits_used: Vec<usize> = Vec::new();
            for instr in target.instructions() {
                gate_mask |= 1 << instr.gate.index();
                for &q in &instr.qubits {
                    if !qubits_used.contains(&q) {
                        qubits_used.push(q);
                    }
                }
            }
            let preds = target.wire_predecessors();
            let connected = preds
                .iter()
                .enumerate()
                .skip(1)
                .all(|(_, ps)| ps.iter().any(|p| p.is_some()));
            let mut pairs: Vec<GatePair> = Vec::new();
            for (j, ops) in preds.iter().enumerate() {
                for i in ops.iter().flatten() {
                    let pair = gate_pair(
                        target.instructions()[*i].gate,
                        target.instructions()[j].gate,
                    );
                    if !pairs.contains(&pair) {
                        pairs.push(pair);
                    }
                }
            }
            for pair in pairs {
                pair_buckets.entry(pair).or_default().push(id);
            }
            for gate in ALL_GATES {
                if gate_mask & (1 << gate.index()) != 0 {
                    gate_buckets[gate.index()].push(id);
                }
            }
            max_pattern_len = max_pattern_len.max(target.gate_count());
            metas.push(PatternMeta {
                histogram,
                qubit_span: qubits_used.len() as u32,
                connected,
            });
        }
        TransformationIndex {
            transformations,
            metas,
            buckets,
            gate_buckets,
            pair_buckets,
            max_pattern_len,
        }
    }

    /// Reassembles an index from its serialized parts (the prebuilt-index
    /// section of a library artifact, DESIGN.md §7) without re-deriving the
    /// anchor assignment.
    ///
    /// The parts are validated structurally — per-transformation histograms
    /// must match each target's gate multiset, and the buckets must form a
    /// partition of the transformation ids — so a corrupted or stale section
    /// is rejected instead of silently changing dispatch behavior.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn from_parts(
        transformations: Vec<Transformation>,
        histograms: Vec<GateHistogram>,
        buckets: Vec<Vec<usize>>,
    ) -> Result<Self, String> {
        if histograms.len() != transformations.len() {
            return Err(format!(
                "index has {} transformations but {} pattern histograms",
                transformations.len(),
                histograms.len()
            ));
        }
        if buckets.len() != Gate::COUNT {
            return Err(format!(
                "index has {} anchor buckets, expected one per gate type ({})",
                buckets.len(),
                Gate::COUNT
            ));
        }
        for (id, (xform, histogram)) in transformations.iter().zip(&histograms).enumerate() {
            if xform.target.gate_histogram() != histogram {
                return Err(format!(
                    "stored histogram of transformation {id} does not match its target pattern"
                ));
            }
        }
        let mut seen = vec![false; transformations.len()];
        for bucket in &buckets {
            for &id in bucket {
                if id >= transformations.len() {
                    return Err(format!(
                        "bucket refers to transformation {id}, only {} exist",
                        transformations.len()
                    ));
                }
                if seen[id] {
                    return Err(format!("transformation {id} appears in two anchor buckets"));
                }
                seen[id] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!(
                "transformation {missing} is missing from every anchor bucket"
            ));
        }
        Ok(TransformationIndex::assemble(transformations, buckets))
    }

    /// The indexed transformations, in their original order.
    pub fn transformations(&self) -> &[Transformation] {
        &self.transformations
    }

    /// Per-transformation target-pattern histograms, in transformation order
    /// (what the histogram-subsumption filter consults; serialized into the
    /// prebuilt-index section).
    pub fn pattern_histograms(&self) -> impl Iterator<Item = &GateHistogram> + '_ {
        self.metas.iter().map(|m| &m.histogram)
    }

    /// The anchor buckets, one per [`Gate`] in [`quartz_ir::ALL_GATES`]
    /// order: the transformation ids anchored on that gate type.
    pub fn anchor_buckets(&self) -> &[Vec<usize>] {
        &self.buckets
    }

    /// Number of indexed transformations.
    pub fn len(&self) -> usize {
        self.transformations.len()
    }

    /// Returns `true` when the index holds no transformations.
    pub fn is_empty(&self) -> bool {
        self.transformations.is_empty()
    }

    /// Largest target-pattern gate count in the index. Any match of a
    /// *connected* pattern lies within `max_pattern_len() - 1` undirected
    /// wire hops ([`quartz_ir::CircuitDag::neighborhood`]) of each of its
    /// own nodes. Introspection only — dirty dispatch pins exact nodes
    /// rather than bounding a search radius (DESIGN.md §8.2).
    pub fn max_pattern_len(&self) -> usize {
        self.max_pattern_len
    }

    /// Whether the target pattern of transformation `id` is wire-connected
    /// (every instruction after the first shares a wire with an earlier
    /// one). Matches of connected patterns are wire-connected subcircuits.
    pub fn pattern_connected(&self, id: usize) -> bool {
        self.metas[id].connected
    }

    /// Ids of the transformations that can possibly match a circuit with the
    /// given gate histogram, in ascending (original) order — so dispatching
    /// through the index visits the same transformations in the same order as
    /// the linear scan, minus the provably-futile ones.
    ///
    /// Convenience wrapper over [`TransformationIndex::candidates_into`]
    /// with a throwaway scratch and no qubit bound; the optimizer's hot loop
    /// uses the scratch variant directly.
    pub fn candidates_for(&self, circuit_histogram: &GateHistogram) -> Vec<usize> {
        let mut ids = Vec::new();
        self.candidates_into(
            circuit_histogram,
            usize::MAX,
            &mut IndexScratch::new(),
            &mut ids,
        );
        ids
    }

    /// Fills `out` with the ids of every transformation that can possibly
    /// match a circuit with the given gate histogram over `num_qubits`
    /// wires, ascending. Alloc-free once `scratch`/`out` are warm.
    ///
    /// Present gate types are walked rarest-in-this-circuit first, so each
    /// transformation is examined exactly once, through its most selective
    /// pattern gate *for this circuit* (the per-circuit re-anchoring pass of
    /// DESIGN.md §8.2), and a single count comparison on that gate rejects
    /// most non-candidates before the full histogram subsumption check.
    pub fn candidates_into(
        &self,
        circuit_histogram: &GateHistogram,
        num_qubits: usize,
        scratch: &mut IndexScratch,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        scratch.begin(self.transformations.len());
        scratch.rarity.clear();
        for gate in circuit_histogram.present_gates() {
            scratch
                .rarity
                .push((circuit_histogram.count(gate) as u32, gate));
        }
        scratch
            .rarity
            .sort_unstable_by_key(|&(n, g)| (n, g.index()));
        let rarity = std::mem::take(&mut scratch.rarity);
        for &(count, gate) in &rarity {
            for &id in &self.gate_buckets[gate.index()] {
                if !scratch.visit(id) {
                    continue;
                }
                let meta = &self.metas[id];
                // `gate` is this pattern's rarest present gate type, so the
                // single-count check is the most selective one available.
                if meta.qubit_span as usize <= num_qubits
                    && meta.histogram.count(gate) <= count as usize
                    && meta.histogram.is_subset_of(circuit_histogram)
                {
                    out.push(id);
                }
            }
        }
        scratch.rarity = rarity;
        out.sort_unstable();
    }

    /// Fills `out` with the ids of every transformation that could have
    /// *gained* a structural match from a splice, given the local evidence
    /// the splice left behind: `inserted_mask` (a bitmask over
    /// [`ALL_GATES`] indices of the inserted nodes' gate types) and
    /// `dirty_pairs` — every ordered (predecessor, successor) gate-type
    /// pair that is wire-adjacent *at* an inserted node in the spliced
    /// circuit, plus the pairs of boundary nodes the splice bridged into
    /// direct adjacency. Ascending; always a subset of
    /// [`TransformationIndex::candidates_into`].
    ///
    /// Soundness (the dirty-dispatch argument of DESIGN.md §8.2): a
    /// structural match that is new after a splice either
    ///
    /// * binds an inserted node `i` — then for a single-gate pattern its
    ///   gate type is `i`'s (the `inserted_mask` lookup); for a
    ///   wire-connected multi-gate pattern, some pattern wire edge at `i`'s
    ///   position maps to a direct circuit adjacency at `i`, so the
    ///   pattern contains one of `dirty_pairs`; disconnected patterns
    ///   (where `i`'s component may be a lone gate) fall back to the
    ///   `inserted_mask` type lookup; or
    /// * avoids all inserted nodes — then it can only have become valid
    ///   because a pattern wire edge now maps onto a *bridged* boundary
    ///   adjacency, so the pattern contains that bridged pair.
    pub fn dirty_candidates_into(
        &self,
        circuit_histogram: &GateHistogram,
        num_qubits: usize,
        inserted_mask: u32,
        dirty_pairs: &[(Gate, Gate)],
        scratch: &mut IndexScratch,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        scratch.begin(self.transformations.len());
        let consider =
            |id: usize, metas: &[PatternMeta], scratch: &mut IndexScratch, out: &mut Vec<usize>| {
                if !scratch.visit(id) {
                    return;
                }
                let meta = &metas[id];
                if meta.qubit_span as usize <= num_qubits
                    && meta.histogram.is_subset_of(circuit_histogram)
                {
                    out.push(id);
                }
            };
        for &(pred, succ) in dirty_pairs {
            if let Some(bucket) = self.pair_buckets.get(&gate_pair(pred, succ)) {
                for &id in bucket {
                    consider(id, &self.metas, scratch, out);
                }
            }
        }
        if inserted_mask != 0 {
            for gate in ALL_GATES {
                if inserted_mask & (1 << gate.index()) == 0 {
                    continue;
                }
                for &id in &self.gate_buckets[gate.index()] {
                    let meta = &self.metas[id];
                    // Multi-gate connected patterns are fully covered by the
                    // dirty-pair lookup above.
                    if meta.histogram.total() == 1 || !meta.connected {
                        consider(id, &self.metas, scratch, out);
                    }
                }
            }
        }
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xform::instruction;
    use quartz_ir::{Circuit, Gate};

    fn xform(target_gates: &[(Gate, usize)], rewrite_gates: &[(Gate, usize)]) -> Transformation {
        let build = |gates: &[(Gate, usize)]| {
            let mut c = Circuit::new(2, 0);
            for &(g, q) in gates {
                if g.num_qubits() == 2 {
                    c.push(instruction(g, &[q, 1 - q]));
                } else {
                    c.push(instruction(g, &[q]));
                }
            }
            c
        };
        Transformation {
            target: build(target_gates),
            rewrite: build(rewrite_gates),
        }
    }

    #[test]
    fn candidates_are_filtered_and_ordered() {
        let xforms = vec![
            xform(&[(Gate::H, 0), (Gate::H, 0)], &[]), // 0: needs H,H
            xform(&[(Gate::X, 0), (Gate::X, 0)], &[]), // 1: needs X,X
            xform(&[(Gate::H, 0), (Gate::Cnot, 0)], &[(Gate::H, 0)]), // 2: needs H,CNOT
            xform(&[(Gate::Cnot, 0), (Gate::Cnot, 0)], &[]), // 3: needs CNOT,CNOT
        ];
        let index = TransformationIndex::new(xforms);
        assert_eq!(index.len(), 4);

        // Circuit with two H's and one CNOT: the X-pattern and the
        // double-CNOT pattern are pruned.
        let mut c = Circuit::new(2, 0);
        c.push(instruction(Gate::H, &[0]));
        c.push(instruction(Gate::H, &[1]));
        c.push(instruction(Gate::Cnot, &[0, 1]));
        assert_eq!(index.candidates_for(c.gate_histogram()), vec![0, 2]);

        // An all-X circuit only consults the X pattern.
        let mut xs = Circuit::new(2, 0);
        xs.push(instruction(Gate::X, &[0]));
        xs.push(instruction(Gate::X, &[0]));
        assert_eq!(index.candidates_for(xs.gate_histogram()), vec![1]);

        // The empty circuit matches nothing.
        assert!(index
            .candidates_for(Circuit::new(2, 0).gate_histogram())
            .is_empty());
    }

    #[test]
    fn multiplicity_matters_not_just_presence() {
        let xforms = vec![xform(&[(Gate::H, 0), (Gate::H, 0)], &[])];
        let index = TransformationIndex::new(xforms);
        let mut one_h = Circuit::new(2, 0);
        one_h.push(instruction(Gate::H, &[0]));
        assert!(index.candidates_for(one_h.gate_histogram()).is_empty());
        let two_h = one_h.appended(instruction(Gate::H, &[1]));
        assert_eq!(index.candidates_for(two_h.gate_histogram()), vec![0]);
    }

    #[test]
    fn scratch_variant_agrees_and_applies_the_qubit_filter() {
        let xforms = vec![
            xform(&[(Gate::H, 0), (Gate::H, 0)], &[]), // 1 qubit... built on 2
            xform(&[(Gate::Cnot, 0), (Gate::Cnot, 0)], &[]), // spans 2 qubits
            xform(&[(Gate::H, 0), (Gate::Cnot, 0)], &[(Gate::H, 0)]), // spans 2 qubits
        ];
        let index = TransformationIndex::new(xforms);
        let mut c = Circuit::new(2, 0);
        c.push(instruction(Gate::H, &[0]));
        c.push(instruction(Gate::H, &[1]));
        c.push(instruction(Gate::Cnot, &[0, 1]));
        c.push(instruction(Gate::Cnot, &[0, 1]));

        let mut scratch = IndexScratch::new();
        let mut ids = Vec::new();
        index.candidates_into(c.gate_histogram(), 2, &mut scratch, &mut ids);
        assert_eq!(ids, index.candidates_for(c.gate_histogram()));
        assert_eq!(ids, vec![0, 1, 2]);

        // On a 1-wire circuit the 2-qubit-span patterns are pruned by span
        // alone (the histogram is forged to still contain their gates).
        index.candidates_into(c.gate_histogram(), 1, &mut scratch, &mut ids);
        assert_eq!(ids, vec![0]);

        // The scratch is reusable across calls (epoch reset, not realloc).
        index.candidates_into(c.gate_histogram(), 2, &mut scratch, &mut ids);
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn dirty_candidates_dispatch_on_adjacency_pairs_and_inserted_types() {
        let mut split = Circuit::new(2, 0);
        split.push(instruction(Gate::H, &[0]));
        split.push(instruction(Gate::X, &[1])); // disconnected H | X
        let mut single = Circuit::new(1, 0);
        single.push(instruction(Gate::H, &[0])); // lone H
        let xforms = vec![
            xform(&[(Gate::H, 0), (Gate::H, 0)], &[]), // 0: H–H wire pair
            xform(&[(Gate::X, 0), (Gate::X, 0)], &[]), // 1: X–X wire pair
            xform(&[(Gate::H, 0), (Gate::Cnot, 0)], &[]), // 2: H–CNOT wire pair
            xform(&[(Gate::Cnot, 0), (Gate::Cnot, 0)], &[]), // 3: CNOT–CNOT wire pair
            Transformation {
                target: split,
                rewrite: Circuit::new(2, 0),
            }, // 4: disconnected
            Transformation {
                target: single,
                rewrite: Circuit::new(1, 0),
            }, // 5: single gate
        ];
        let index = TransformationIndex::new(xforms);
        let mut c = Circuit::new(2, 0);
        c.push(instruction(Gate::H, &[0]));
        c.push(instruction(Gate::H, &[1]));
        c.push(instruction(Gate::X, &[0]));
        c.push(instruction(Gate::X, &[1]));
        c.push(instruction(Gate::Cnot, &[0, 1]));
        c.push(instruction(Gate::Cnot, &[0, 1]));

        let mut scratch = IndexScratch::new();
        let mut ids = Vec::new();
        // An H → CNOT adjacency created by the splice concerns exactly the
        // patterns with an H → CNOT wire edge.
        index.dirty_candidates_into(
            c.gate_histogram(),
            2,
            0,
            &[(Gate::H, Gate::Cnot)],
            &mut scratch,
            &mut ids,
        );
        assert_eq!(ids, vec![2]);
        // ... and the pair is ordered: CNOT → H adjacency matches nothing.
        index.dirty_candidates_into(
            c.gate_histogram(),
            2,
            0,
            &[(Gate::Cnot, Gate::H)],
            &mut scratch,
            &mut ids,
        );
        assert!(ids.is_empty());
        // An inserted H alone (no realized pairs, e.g. dropped onto an
        // empty wire) dispatches the single-gate H pattern and the
        // disconnected pattern — but *not* the connected multi-gate
        // H-bearing patterns, which need a realized adjacency.
        let h_mask = 1u32 << Gate::H.index();
        index.dirty_candidates_into(c.gate_histogram(), 2, h_mask, &[], &mut scratch, &mut ids);
        assert_eq!(ids, vec![4, 5]);
        // Evidence combines, deduplicated, sorted — and always a subset of
        // the full candidate list.
        index.dirty_candidates_into(
            c.gate_histogram(),
            2,
            h_mask,
            &[(Gate::Cnot, Gate::Cnot), (Gate::H, Gate::H)],
            &mut scratch,
            &mut ids,
        );
        assert_eq!(ids, vec![0, 3, 4, 5]);
        let full = index.candidates_for(c.gate_histogram());
        assert!(ids.iter().all(|id| full.contains(id)));
        // No evidence, no candidates.
        index.dirty_candidates_into(c.gate_histogram(), 2, 0, &[], &mut scratch, &mut ids);
        assert!(ids.is_empty());
    }

    #[test]
    fn pattern_connectivity_and_max_len_are_recorded() {
        // H(0); H(1) on distinct wires is disconnected; H then CNOT sharing
        // wire 0 is connected.
        let mut split = Circuit::new(2, 0);
        split.push(instruction(Gate::H, &[0]));
        split.push(instruction(Gate::H, &[1]));
        let connected = {
            let mut c = Circuit::new(2, 0);
            c.push(instruction(Gate::H, &[0]));
            c.push(instruction(Gate::Cnot, &[0, 1]));
            c.push(instruction(Gate::H, &[1]));
            c
        };
        let index = TransformationIndex::new(vec![
            Transformation {
                target: split,
                rewrite: Circuit::new(2, 0),
            },
            Transformation {
                target: connected,
                rewrite: Circuit::new(2, 0),
            },
        ]);
        assert!(!index.pattern_connected(0));
        assert!(index.pattern_connected(1));
        assert_eq!(index.max_pattern_len(), 3);
    }

    #[test]
    fn from_parts_round_trips_and_rejects_inconsistencies() {
        let xforms = vec![
            xform(&[(Gate::H, 0), (Gate::H, 0)], &[]),
            xform(&[(Gate::X, 0)], &[(Gate::H, 0)]),
        ];
        let built = TransformationIndex::new(xforms);
        let histograms: Vec<GateHistogram> = built.pattern_histograms().copied().collect();
        let buckets = built.anchor_buckets().to_vec();
        let rebuilt = TransformationIndex::from_parts(
            built.transformations().to_vec(),
            histograms.clone(),
            buckets.clone(),
        )
        .unwrap();
        let mut c = Circuit::new(2, 0);
        c.push(instruction(Gate::H, &[0]));
        c.push(instruction(Gate::H, &[1]));
        assert_eq!(
            built.candidates_for(c.gate_histogram()),
            rebuilt.candidates_for(c.gate_histogram())
        );

        // Histogram mismatch is rejected.
        let mut bad_histograms = histograms.clone();
        bad_histograms.swap(0, 1);
        assert!(TransformationIndex::from_parts(
            built.transformations().to_vec(),
            bad_histograms,
            buckets.clone(),
        )
        .is_err());

        // A duplicated bucket id is rejected.
        let mut dup = buckets.clone();
        let id = dup.iter().position(|b| !b.is_empty()).unwrap();
        let first = dup[id][0];
        dup[id].push(first);
        assert!(TransformationIndex::from_parts(
            built.transformations().to_vec(),
            histograms.clone(),
            dup,
        )
        .is_err());

        // A missing id is rejected.
        let mut missing = buckets;
        let id = missing.iter().position(|b| !b.is_empty()).unwrap();
        missing[id].clear();
        assert!(TransformationIndex::from_parts(
            built.transformations().to_vec(),
            histograms,
            missing,
        )
        .is_err());
    }
}
