//! Indexed transformation dispatch (DESIGN.md §2.2).
//!
//! The search dequeues a circuit and must decide which transformations to
//! attempt. The naive approach — run the pattern matcher for *every*
//! transformation — wastes most of its time on patterns that cannot possibly
//! match. [`TransformationIndex`] prunes that set with two cheap filters
//! before any matching happens:
//!
//! 1. **Anchor buckets.** Every transformation is bucketed under one *anchor*
//!    gate type chosen from its target pattern (the globally rarest pattern
//!    gate, for selectivity). A bucket is consulted only when the dequeued
//!    circuit contains the anchor gate at all.
//! 2. **Histogram subsumption.** A pattern can only match a circuit when its
//!    gate-type multiset is a subset of the circuit's
//!    ([`quartz_ir::GateHistogram::is_subset_of`]). Candidates surviving the
//!    bucket lookup are checked against the circuit's incrementally-maintained
//!    histogram in O([`Gate::COUNT`]).
//!
//! Both filters are *sound*: a skipped transformation is guaranteed to have
//! zero matches, so the surviving candidate list — returned in original
//! transformation order — produces exactly the same rewrites as the full
//! linear scan, and the search explores an identical state space.
//!
//! The index lives in `quartz-gen` (next to the ECC sets it is derived from)
//! so that persisted library artifacts ([`crate::library`], DESIGN.md §7)
//! can embed a *prebuilt* index section and services can skip both
//! generation and index construction at startup; the optimizer crate
//! re-exports it.

use crate::xform::Transformation;
use quartz_ir::{Gate, GateHistogram};

/// Per-pattern metadata precomputed at index construction.
#[derive(Debug, Clone)]
struct PatternMeta {
    /// Gate-type multiset of the target pattern.
    histogram: GateHistogram,
}

/// An index over a transformation library, grouping transformations by
/// anchor gate type and pattern gate-type multiset.
#[derive(Debug, Clone)]
pub struct TransformationIndex {
    transformations: Vec<Transformation>,
    metas: Vec<PatternMeta>,
    /// Transformation ids bucketed by anchor gate index; each id appears in
    /// exactly one bucket.
    buckets: Vec<Vec<usize>>,
}

impl TransformationIndex {
    /// Builds the index. Transformations with an empty target pattern are
    /// rejected upstream (see [`crate::transformations_from_ecc_set`]); if
    /// one slips through it is bucketed under an arbitrary anchor and always
    /// attempted.
    pub fn new(transformations: Vec<Transformation>) -> Self {
        // Global frequency of each gate type across all target patterns,
        // used to pick the most selective anchor per pattern.
        let mut global_counts = [0usize; Gate::COUNT];
        for xform in &transformations {
            for instr in xform.target.instructions() {
                global_counts[instr.gate.index()] += 1;
            }
        }
        let mut metas = Vec::with_capacity(transformations.len());
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); Gate::COUNT];
        for (id, xform) in transformations.iter().enumerate() {
            let histogram = *xform.target.gate_histogram();
            let anchor = xform
                .target
                .instructions()
                .iter()
                .map(|i| i.gate)
                .min_by_key(|g| (global_counts[g.index()], g.index()))
                .unwrap_or(Gate::H);
            buckets[anchor.index()].push(id);
            metas.push(PatternMeta { histogram });
        }
        TransformationIndex {
            transformations,
            metas,
            buckets,
        }
    }

    /// Reassembles an index from its serialized parts (the prebuilt-index
    /// section of a library artifact, DESIGN.md §7) without re-deriving the
    /// anchor assignment.
    ///
    /// The parts are validated structurally — per-transformation histograms
    /// must match each target's gate multiset, and the buckets must form a
    /// partition of the transformation ids — so a corrupted or stale section
    /// is rejected instead of silently changing dispatch behavior.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn from_parts(
        transformations: Vec<Transformation>,
        histograms: Vec<GateHistogram>,
        buckets: Vec<Vec<usize>>,
    ) -> Result<Self, String> {
        if histograms.len() != transformations.len() {
            return Err(format!(
                "index has {} transformations but {} pattern histograms",
                transformations.len(),
                histograms.len()
            ));
        }
        if buckets.len() != Gate::COUNT {
            return Err(format!(
                "index has {} anchor buckets, expected one per gate type ({})",
                buckets.len(),
                Gate::COUNT
            ));
        }
        for (id, (xform, histogram)) in transformations.iter().zip(&histograms).enumerate() {
            if xform.target.gate_histogram() != histogram {
                return Err(format!(
                    "stored histogram of transformation {id} does not match its target pattern"
                ));
            }
        }
        let mut seen = vec![false; transformations.len()];
        for bucket in &buckets {
            for &id in bucket {
                if id >= transformations.len() {
                    return Err(format!(
                        "bucket refers to transformation {id}, only {} exist",
                        transformations.len()
                    ));
                }
                if seen[id] {
                    return Err(format!("transformation {id} appears in two anchor buckets"));
                }
                seen[id] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!(
                "transformation {missing} is missing from every anchor bucket"
            ));
        }
        Ok(TransformationIndex {
            transformations,
            metas: histograms
                .into_iter()
                .map(|histogram| PatternMeta { histogram })
                .collect(),
            buckets,
        })
    }

    /// The indexed transformations, in their original order.
    pub fn transformations(&self) -> &[Transformation] {
        &self.transformations
    }

    /// Per-transformation target-pattern histograms, in transformation order
    /// (what the histogram-subsumption filter consults; serialized into the
    /// prebuilt-index section).
    pub fn pattern_histograms(&self) -> impl Iterator<Item = &GateHistogram> + '_ {
        self.metas.iter().map(|m| &m.histogram)
    }

    /// The anchor buckets, one per [`Gate`] in [`quartz_ir::ALL_GATES`]
    /// order: the transformation ids anchored on that gate type.
    pub fn anchor_buckets(&self) -> &[Vec<usize>] {
        &self.buckets
    }

    /// Number of indexed transformations.
    pub fn len(&self) -> usize {
        self.transformations.len()
    }

    /// Returns `true` when the index holds no transformations.
    pub fn is_empty(&self) -> bool {
        self.transformations.is_empty()
    }

    /// Ids of the transformations that can possibly match a circuit with the
    /// given gate histogram, in ascending (original) order — so dispatching
    /// through the index visits the same transformations in the same order as
    /// the linear scan, minus the provably-futile ones.
    pub fn candidates_for(&self, circuit_histogram: &GateHistogram) -> Vec<usize> {
        let mut ids = Vec::new();
        for gate in circuit_histogram.present_gates() {
            for &id in &self.buckets[gate.index()] {
                if self.metas[id].histogram.is_subset_of(circuit_histogram) {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xform::instruction;
    use quartz_ir::{Circuit, Gate};

    fn xform(target_gates: &[(Gate, usize)], rewrite_gates: &[(Gate, usize)]) -> Transformation {
        let build = |gates: &[(Gate, usize)]| {
            let mut c = Circuit::new(2, 0);
            for &(g, q) in gates {
                if g.num_qubits() == 2 {
                    c.push(instruction(g, &[q, 1 - q]));
                } else {
                    c.push(instruction(g, &[q]));
                }
            }
            c
        };
        Transformation {
            target: build(target_gates),
            rewrite: build(rewrite_gates),
        }
    }

    #[test]
    fn candidates_are_filtered_and_ordered() {
        let xforms = vec![
            xform(&[(Gate::H, 0), (Gate::H, 0)], &[]), // 0: needs H,H
            xform(&[(Gate::X, 0), (Gate::X, 0)], &[]), // 1: needs X,X
            xform(&[(Gate::H, 0), (Gate::Cnot, 0)], &[(Gate::H, 0)]), // 2: needs H,CNOT
            xform(&[(Gate::Cnot, 0), (Gate::Cnot, 0)], &[]), // 3: needs CNOT,CNOT
        ];
        let index = TransformationIndex::new(xforms);
        assert_eq!(index.len(), 4);

        // Circuit with two H's and one CNOT: the X-pattern and the
        // double-CNOT pattern are pruned.
        let mut c = Circuit::new(2, 0);
        c.push(instruction(Gate::H, &[0]));
        c.push(instruction(Gate::H, &[1]));
        c.push(instruction(Gate::Cnot, &[0, 1]));
        assert_eq!(index.candidates_for(c.gate_histogram()), vec![0, 2]);

        // An all-X circuit only consults the X pattern.
        let mut xs = Circuit::new(2, 0);
        xs.push(instruction(Gate::X, &[0]));
        xs.push(instruction(Gate::X, &[0]));
        assert_eq!(index.candidates_for(xs.gate_histogram()), vec![1]);

        // The empty circuit matches nothing.
        assert!(index
            .candidates_for(Circuit::new(2, 0).gate_histogram())
            .is_empty());
    }

    #[test]
    fn multiplicity_matters_not_just_presence() {
        let xforms = vec![xform(&[(Gate::H, 0), (Gate::H, 0)], &[])];
        let index = TransformationIndex::new(xforms);
        let mut one_h = Circuit::new(2, 0);
        one_h.push(instruction(Gate::H, &[0]));
        assert!(index.candidates_for(one_h.gate_histogram()).is_empty());
        let two_h = one_h.appended(instruction(Gate::H, &[1]));
        assert_eq!(index.candidates_for(two_h.gate_histogram()), vec![0]);
    }

    #[test]
    fn from_parts_round_trips_and_rejects_inconsistencies() {
        let xforms = vec![
            xform(&[(Gate::H, 0), (Gate::H, 0)], &[]),
            xform(&[(Gate::X, 0)], &[(Gate::H, 0)]),
        ];
        let built = TransformationIndex::new(xforms);
        let histograms: Vec<GateHistogram> = built.pattern_histograms().copied().collect();
        let buckets = built.anchor_buckets().to_vec();
        let rebuilt = TransformationIndex::from_parts(
            built.transformations().to_vec(),
            histograms.clone(),
            buckets.clone(),
        )
        .unwrap();
        let mut c = Circuit::new(2, 0);
        c.push(instruction(Gate::H, &[0]));
        c.push(instruction(Gate::H, &[1]));
        assert_eq!(
            built.candidates_for(c.gate_histogram()),
            rebuilt.candidates_for(c.gate_histogram())
        );

        // Histogram mismatch is rejected.
        let mut bad_histograms = histograms.clone();
        bad_histograms.swap(0, 1);
        assert!(TransformationIndex::from_parts(
            built.transformations().to_vec(),
            bad_histograms,
            buckets.clone(),
        )
        .is_err());

        // A duplicated bucket id is rejected.
        let mut dup = buckets.clone();
        let id = dup.iter().position(|b| !b.is_empty()).unwrap();
        let first = dup[id][0];
        dup[id].push(first);
        assert!(TransformationIndex::from_parts(
            built.transformations().to_vec(),
            histograms.clone(),
            dup,
        )
        .is_err());

        // A missing id is rejected.
        let mut missing = buckets;
        let id = missing.iter().position(|b| !b.is_empty()).unwrap();
        missing[id].clear();
        assert!(TransformationIndex::from_parts(
            built.transformations().to_vec(),
            histograms,
            missing,
        )
        .is_err());
    }
}
