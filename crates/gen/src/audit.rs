//! `quartz-audit`: whole-library soundness analysis over ECC sets and
//! persisted `QTZL` artifacts (DESIGN.md §11).
//!
//! The integrity checksum of the artifact format proves an artifact is the
//! bytes its producer wrote — it proves nothing about whether those bytes
//! encode *sound* rewrite rules. A buggy generator, a stale artifact, or a
//! hand-edited library would pass every checksum and ship unsound rewrites
//! into every search that loads it. The auditor closes that gap with three
//! passes:
//!
//! 1. **Semantic verification** — every equivalence class is re-checked
//!    with the paper's §4 decision procedure ([`quartz_verify::Verifier`]):
//!    each member against its representative, phase-factor search included,
//!    parallelized over classes. A content-addressed *verified-cache* (the
//!    [`AuditStamp`] sidecar, keyed by a digest of the class circuits +
//!    [`GENERATOR_VERSION`] + the verifier configuration) makes re-audits
//!    of unchanged classes O(1).
//! 2. **Structural lints** — typed diagnostics ([`Diagnostic`]: rule code,
//!    severity, ecc/circuit/instruction location) for gate-set membership
//!    violations, malformed instruction shapes, dangling `ParamExpr`
//!    parameter slots, duplicate and no-op transformations, non-canonical
//!    pattern circuits, prebuilt-index anomalies, and *dead rules* that can
//!    never fire under any additive cost model (γ-precheck-unreachable).
//! 3. **Reporting** — a machine-readable JSON report (hand-rolled codec,
//!    per the offline-deps policy) and a human-readable summary with an
//!    exit-code policy of "errors fail, warnings don't".
//!
//! A clean audit can be recorded as an [`AuditStamp`] sidecar next to the
//! artifact; `quartz_opt::LibraryCache` and the `quartz-serve` daemon can
//! be told to refuse artifacts without a matching stamp
//! (`--require-audited`).

use crate::library::{checksum64, encode_circuit};
use crate::{
    transformations_from_ecc_set, Ecc, EccSet, LibraryError, LibraryReader, Transformation,
    TransformationIndex, GENERATOR_VERSION,
};
use quartz_ir::{canonicalize, Circuit, CostModel, GateSet};
use quartz_verify::{MemberFailure, Verifier, VerifierConfig};
use rayon::IntoParallelRefIterator;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// How bad a finding is. Errors make the audit fail (exit code 1 in the
/// CLI); warnings are reported but do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not unsound: the library still optimizes correctly.
    Warning,
    /// Unsound or unusable: loading this library risks wrong results.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The audit's rule catalog. `Exxx` rules default to [`Severity::Error`],
/// `Wxxx` rules to [`Severity::Warning`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleCode {
    /// A class member is not equivalent to its representative (§4
    /// verifier verdict). The library would rewrite circuits *wrongly*.
    SemanticNotEquivalent,
    /// A semantic query was ill-formed (qubit-count mismatch,
    /// unrepresentable angle) — the class cannot even be checked.
    SemanticQueryError,
    /// An instruction uses a gate outside the artifact's declared gate set.
    GateSetViolation,
    /// An instruction's operand shape is malformed: wrong qubit arity,
    /// out-of-range or duplicated qubits, or wrong parameter count.
    MalformedInstruction,
    /// A `ParamExpr` carries a coefficient vector whose length disagrees
    /// with the set's parameter count — a dangling parameter slot.
    DanglingParamIndex,
    /// The prebuilt index section disagrees with the transformation list
    /// freshly extracted from the ECC payload — the index is stale.
    StaleIndex,
    /// The prebuilt index section failed to decode or validate.
    IndexDecode,
    /// Two classes induce the same (target, rewrite) transformation up to
    /// commutation — duplicated matching work for the optimizer.
    DuplicateTransformation,
    /// A class contains two circuits equal up to commutation: the induced
    /// transformation rewrites a circuit to itself.
    NoOpTransformation,
    /// A stored pattern circuit is not in canonical sequence form.
    NonCanonicalPattern,
    /// A transformation strictly increases cost under *every* additive
    /// cost model: the γ-precheck makes it unreachable (DESIGN.md §11).
    DeadRule,
    /// The artifact's gate-set name is not one of the known sets, so the
    /// gate-set membership lint was skipped.
    UnknownGateSet,
}

impl RuleCode {
    /// The stable short code used in reports (`E…` = error, `W…` =
    /// warning).
    pub fn code(&self) -> &'static str {
        match self {
            RuleCode::SemanticNotEquivalent => "E001",
            RuleCode::SemanticQueryError => "E002",
            RuleCode::GateSetViolation => "E003",
            RuleCode::MalformedInstruction => "E004",
            RuleCode::DanglingParamIndex => "E005",
            RuleCode::StaleIndex => "E006",
            RuleCode::IndexDecode => "E007",
            RuleCode::DuplicateTransformation => "W101",
            RuleCode::NoOpTransformation => "W102",
            RuleCode::NonCanonicalPattern => "W103",
            RuleCode::DeadRule => "W104",
            RuleCode::UnknownGateSet => "W105",
        }
    }

    /// The rule's severity.
    pub fn severity(&self) -> Severity {
        if self.code().starts_with('E') {
            Severity::Error
        } else {
            Severity::Warning
        }
    }
}

impl fmt::Display for RuleCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// Where in the artifact a finding points: class index, circuit index
/// within the class (0 = representative), instruction index within the
/// circuit. Coarser findings leave the finer fields `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Location {
    /// Index of the equivalence class in the ECC payload.
    pub ecc: Option<usize>,
    /// Index of the circuit within the class (0 is the representative).
    pub circuit: Option<usize>,
    /// Index of the instruction within the circuit.
    pub instruction: Option<usize>,
}

impl Location {
    /// A finding about the artifact as a whole.
    pub fn artifact() -> Self {
        Location::default()
    }

    /// A finding about a whole class.
    pub fn ecc(ecc: usize) -> Self {
        Location {
            ecc: Some(ecc),
            ..Location::default()
        }
    }

    /// A finding about one circuit of a class.
    pub fn circuit(ecc: usize, circuit: usize) -> Self {
        Location {
            ecc: Some(ecc),
            circuit: Some(circuit),
            instruction: None,
        }
    }

    /// A finding about one instruction of one circuit of a class.
    pub fn instruction(ecc: usize, circuit: usize, instruction: usize) -> Self {
        Location {
            ecc: Some(ecc),
            circuit: Some(circuit),
            instruction: Some(instruction),
        }
    }
}

/// The grammar here is a grep-friendly contract shared with the CI
/// seeded-mutation check: `ecc E / circuit C / instruction I`, truncated
/// at the first `None`, or `artifact` when nothing is set.
impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.ecc, self.circuit, self.instruction) {
            (Some(e), Some(c), Some(i)) => {
                write!(f, "ecc {e} / circuit {c} / instruction {i}")
            }
            (Some(e), Some(c), None) => write!(f, "ecc {e} / circuit {c}"),
            (Some(e), None, _) => write!(f, "ecc {e}"),
            _ => write!(f, "artifact"),
        }
    }
}

/// One finding: a rule, its severity, where it points, and a
/// human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleCode,
    /// The rule's severity (always `rule.severity()` today; kept on the
    /// diagnostic so reports stay self-describing).
    pub severity: Severity,
    /// Where the finding points.
    pub location: Location,
    /// What went wrong, in words.
    pub message: String,
}

impl Diagnostic {
    fn new(rule: RuleCode, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: rule.severity(),
            location,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} [{}] {}",
            self.severity, self.rule, self.location, self.message
        )
    }
}

/// Configuration of an audit run.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditConfig {
    /// Verifier configuration for the semantic pass. Part of the
    /// verified-cache key: changing it invalidates every cached class.
    pub verifier: VerifierConfig,
    /// Worker threads for the parallel semantic pass (0 = all cores).
    pub threads: usize,
    /// The search's γ threshold assumed by the dead-rule lint: a rule
    /// whose cost delta is positive under every additive model cannot
    /// fire while the incumbent best cost is below `1 / (γ − 1)`.
    pub gamma: f64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            verifier: VerifierConfig::default(),
            threads: 0,
            // The optimizer's default γ (SearchConfig::default): admits
            // cost-preserving rewrites, rejects cost-increasing ones until
            // the incumbent best exceeds 1/(γ−1) = 10_000 gates.
            gamma: 1.0001,
        }
    }
}

/// The outcome of auditing one artifact (or in-memory ECC set).
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Label of the audited artifact (its path, for file audits).
    pub artifact: String,
    /// Gate-set name recorded in the artifact header.
    pub gate_set: String,
    /// The artifact checksum (0 for in-memory audits without a header).
    pub artifact_checksum: u64,
    /// Generator version recorded in the artifact header.
    pub generator_version: u32,
    /// Digest of the verifier configuration used by the semantic pass.
    pub verifier_digest: u64,
    /// Number of equivalence classes in the artifact.
    pub classes: usize,
    /// Classes whose semantic verification was skipped because their
    /// digest was found in the verified-cache sidecar.
    pub cache_hits: usize,
    /// Per-class content digests (class circuits + generator version +
    /// verifier config), in payload order — the verified-cache key
    /// material for the next audit.
    pub class_digests: Vec<u64>,
    /// Every finding, semantic and structural.
    pub diagnostics: Vec<Diagnostic>,
}

impl AuditReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether the audit passed (no errors; warnings are allowed).
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// The sidecar stamp certifying this audit, for
    /// [`AuditStamp::save_for`]. Only clean audits produce a stamp.
    pub fn stamp(&self) -> Option<AuditStamp> {
        self.is_clean().then(|| AuditStamp {
            artifact_checksum: self.artifact_checksum,
            generator_version: self.generator_version,
            verifier_digest: self.verifier_digest,
            errors: self.errors(),
            warnings: self.warnings(),
            class_digests: self.class_digests.clone(),
        })
    }

    /// The machine-readable JSON form of the report (hand-rolled codec,
    /// per the offline-deps policy). 64-bit digests are hex strings so no
    /// consumer is tempted to round-trip them through a double.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.diagnostics.len() * 128);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"artifact\": {},\n",
            json_string(&self.artifact)
        ));
        out.push_str(&format!(
            "  \"gate_set\": {},\n",
            json_string(&self.gate_set)
        ));
        out.push_str(&format!(
            "  \"artifact_checksum\": \"{:#018x}\",\n",
            self.artifact_checksum
        ));
        out.push_str(&format!(
            "  \"generator_version\": {},\n",
            self.generator_version
        ));
        out.push_str(&format!(
            "  \"verifier_digest\": \"{:#018x}\",\n",
            self.verifier_digest
        ));
        out.push_str(&format!("  \"classes\": {},\n", self.classes));
        out.push_str(&format!("  \"cache_hits\": {},\n", self.cache_hits));
        out.push_str(&format!("  \"errors\": {},\n", self.errors()));
        out.push_str(&format!("  \"warnings\": {},\n", self.warnings()));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": \"{}\", ", d.rule));
            out.push_str(&format!("\"severity\": \"{}\", ", d.severity));
            let loc = |name: &str, v: Option<usize>| match v {
                Some(v) => format!("\"{name}\": {v}, "),
                None => format!("\"{name}\": null, "),
            };
            out.push_str(&loc("ecc", d.location.ecc));
            out.push_str(&loc("circuit", d.location.circuit));
            out.push_str(&loc("instruction", d.location.instruction));
            out.push_str(&format!("\"message\": {}", json_string(&d.message)));
            out.push('}');
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "audit of {} (gate set {}, {} classes, checksum {:#018x})",
            self.artifact, self.gate_set, self.classes, self.artifact_checksum
        )?;
        writeln!(
            f,
            "  semantic: {} classes re-verified, verified-cache: {}/{} classes hit",
            self.classes - self.cache_hits,
            self.cache_hits,
            self.classes
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        write!(
            f,
            "result: {} ({} errors, {} warnings)",
            if self.is_clean() { "PASS" } else { "FAIL" },
            self.errors(),
            self.warnings()
        )
    }
}

/// The verified-cache sidecar: a clean audit persisted next to the
/// artifact (`<artifact>.audit`).
///
/// It plays two roles (DESIGN.md §11):
///
/// * **verified-cache** — `class_digests` are the content digests of the
///   classes proven sound; a later audit skips re-verifying any class
///   whose digest it finds here. The digest covers the class circuits,
///   [`GENERATOR_VERSION`] and the verifier configuration, so a stale
///   generator or a different verifier can never produce a false hit.
/// * **audit stamp** — `quartz_opt::LibraryCache` (with `require_audited`)
///   and `quartz-serve --require-audited` refuse artifacts whose sidecar
///   is missing, recorded errors, or certifies different bytes
///   ([`AuditStamp::certifies`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditStamp {
    /// Checksum of the artifact the audit ran over.
    pub artifact_checksum: u64,
    /// Generator version of the audited artifact.
    pub generator_version: u32,
    /// Digest of the verifier configuration the semantic pass used.
    pub verifier_digest: u64,
    /// Error count of the recorded audit (0 for stamps written by
    /// [`AuditReport::stamp`]).
    pub errors: usize,
    /// Warning count of the recorded audit.
    pub warnings: usize,
    /// Content digests of the classes proven sound, in payload order.
    pub class_digests: Vec<u64>,
}

/// Schema version of the sidecar JSON.
pub const AUDIT_STAMP_SCHEMA_VERSION: u32 = 1;

impl AuditStamp {
    /// The sidecar path for an artifact: `<artifact>.audit`.
    pub fn sidecar_path(artifact: &Path) -> PathBuf {
        let mut os = artifact.as_os_str().to_os_string();
        os.push(".audit");
        PathBuf::from(os)
    }

    /// Whether this stamp certifies the artifact with the given checksum
    /// under the given verifier configuration digest: the recorded audit
    /// was clean, ran over exactly these bytes, and used the same
    /// generator version and verifier configuration.
    pub fn certifies(&self, artifact_checksum: u64, verifier_digest: u64) -> bool {
        self.errors == 0
            && self.artifact_checksum == artifact_checksum
            && self.generator_version == GENERATOR_VERSION
            && self.verifier_digest == verifier_digest
    }

    /// Loads the sidecar for `artifact`, if present and well-formed.
    /// A missing, unreadable or corrupt sidecar is `None` — the audit
    /// falls back to full verification, never to trusting garbage.
    pub fn load_for(artifact: &Path) -> Option<AuditStamp> {
        let text = std::fs::read_to_string(Self::sidecar_path(artifact)).ok()?;
        Self::parse(&text).ok()
    }

    /// Writes the sidecar next to `artifact`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file write error.
    pub fn save_for(&self, artifact: &Path) -> std::io::Result<()> {
        std::fs::write(Self::sidecar_path(artifact), self.to_json())
    }

    /// The sidecar JSON (hand-rolled; 64-bit values as hex strings).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.class_digests.len() * 24);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {AUDIT_STAMP_SCHEMA_VERSION},\n"
        ));
        out.push_str(&format!(
            "  \"artifact_checksum\": \"{:#018x}\",\n",
            self.artifact_checksum
        ));
        out.push_str(&format!(
            "  \"generator_version\": {},\n",
            self.generator_version
        ));
        out.push_str(&format!(
            "  \"verifier_digest\": \"{:#018x}\",\n",
            self.verifier_digest
        ));
        out.push_str(&format!("  \"errors\": {},\n", self.errors));
        out.push_str(&format!("  \"warnings\": {},\n", self.warnings));
        out.push_str("  \"class_digests\": [");
        for (i, d) in self.class_digests.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{d:#018x}\""));
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses sidecar JSON produced by [`AuditStamp::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct.
    pub fn parse(text: &str) -> Result<AuditStamp, String> {
        let mut fields = StampScanner::new(text).scan()?;
        let schema = fields.take_u64("schema_version")?;
        if schema != u64::from(AUDIT_STAMP_SCHEMA_VERSION) {
            return Err(format!("unsupported sidecar schema version {schema}"));
        }
        Ok(AuditStamp {
            artifact_checksum: fields.take_u64("artifact_checksum")?,
            generator_version: u32::try_from(fields.take_u64("generator_version")?)
                .map_err(|_| "generator_version out of range".to_string())?,
            verifier_digest: fields.take_u64("verifier_digest")?,
            errors: fields.take_u64("errors")? as usize,
            warnings: fields.take_u64("warnings")? as usize,
            class_digests: fields.take_array("class_digests")?,
        })
    }
}

/// Escapes a string as a JSON literal (the report contains artifact paths
/// and lint messages, which may hold quotes or backslashes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal scanner for the sidecar's flat JSON object: string values are
/// hex-encoded u64s, numeric values are decimal u64s, and the only array
/// holds hex strings. Anything else is rejected.
struct StampScanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// The scanned field set, consumed by name.
struct StampFields {
    scalars: HashMap<String, u64>,
    arrays: HashMap<String, Vec<u64>>,
}

impl StampFields {
    fn take_u64(&mut self, name: &str) -> Result<u64, String> {
        self.scalars
            .remove(name)
            .ok_or_else(|| format!("sidecar is missing field \"{name}\""))
    }

    fn take_array(&mut self, name: &str) -> Result<Vec<u64>, String> {
        self.arrays
            .remove(name)
            .ok_or_else(|| format!("sidecar is missing field \"{name}\""))
    }
}

impl<'a> StampScanner<'a> {
    fn new(text: &'a str) -> Self {
        StampScanner {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn scan(mut self) -> Result<StampFields, String> {
        let mut fields = StampFields {
            scalars: HashMap::new(),
            arrays: HashMap::new(),
        };
        self.expect(b'{')?;
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                break;
            }
            let key = self.string()?;
            self.expect(b':')?;
            self.skip_ws();
            match self.peek() {
                Some(b'[') => {
                    self.pos += 1;
                    let mut values = Vec::new();
                    self.skip_ws();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                    } else {
                        loop {
                            let s = self.string()?;
                            values.push(parse_hex_u64(&s)?);
                            self.skip_ws();
                            match self.peek() {
                                Some(b',') => self.pos += 1,
                                Some(b']') => {
                                    self.pos += 1;
                                    break;
                                }
                                _ => return Err("expected ',' or ']' in array".into()),
                            }
                        }
                    }
                    fields.arrays.insert(key, values);
                }
                Some(b'"') => {
                    let s = self.string()?;
                    fields.scalars.insert(key, parse_hex_u64(&s)?);
                }
                Some(c) if c.is_ascii_digit() => {
                    fields.scalars.insert(key, self.number()?);
                }
                _ => return Err(format!("unexpected value for field \"{key}\"")),
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err("expected ',' or '}' after field".into()),
            }
        }
        Ok(fields)
    }

    fn skip_ws(&mut self) {
        while self
            .peek()
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in sidecar string".to_string())?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            if b == b'\\' {
                return Err("escape sequences are not used in sidecar strings".into());
            }
            self.pos += 1;
        }
        Err("unterminated string in sidecar".into())
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("malformed number at byte {start}"))
    }
}

fn parse_hex_u64(s: &str) -> Result<u64, String> {
    let hex = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("expected 0x-prefixed hex value, got \"{s}\""))?;
    u64::from_str_radix(hex, 16).map_err(|e| format!("malformed hex value \"{s}\": {e}"))
}

/// The content digest of one equivalence class: a checksum over the
/// class's encoded circuits prefixed by everything the semantic verdict
/// depends on — [`GENERATOR_VERSION`], the set shape, and the verifier
/// configuration digest. Equal digests ⟹ the re-verification would
/// reproduce the recorded verdict, which is what makes sidecar hits sound.
pub fn class_digest(ecc: &Ecc, num_qubits: usize, num_params: usize, verifier_digest: u64) -> u64 {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&GENERATOR_VERSION.to_le_bytes());
    buf.extend_from_slice(&(num_qubits as u64).to_le_bytes());
    buf.extend_from_slice(&(num_params as u64).to_le_bytes());
    buf.extend_from_slice(&verifier_digest.to_le_bytes());
    for circuit in ecc.circuits() {
        encode_circuit(&mut buf, circuit);
    }
    checksum64(&buf)
}

/// The multi-pass analyzer. Construct once, audit any number of sets or
/// artifacts.
#[derive(Debug, Clone, Default)]
pub struct Auditor {
    config: AuditConfig,
}

impl Auditor {
    /// Creates an auditor with the given configuration.
    pub fn new(config: AuditConfig) -> Self {
        Auditor { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AuditConfig {
        &self.config
    }

    /// Audits a persisted artifact at `path`, using the `<path>.audit`
    /// sidecar as verified-cache when `use_cache` is set.
    ///
    /// # Errors
    ///
    /// Propagates I/O and artifact-validation errors ([`LibraryError`]) —
    /// an artifact that fails its own format checks never reaches the
    /// analysis passes (the `verify-checksum` CLI path covers that layer).
    pub fn audit_artifact(
        &self,
        path: &Path,
        use_cache: bool,
    ) -> Result<AuditReport, LibraryError> {
        let bytes =
            std::fs::read(path).map_err(|e| LibraryError::Io(crate::path_io_error(path, e)))?;
        let reader = LibraryReader::new(&bytes)?;
        reader.verify_checksum()?;
        let set = reader.decode_ecc_set()?;
        // An undecodable prebuilt index is a *finding*, not an abort: the
        // payload can still be fully audited.
        let (index, index_diag) = match reader.decode_index() {
            Ok(index) => (index, None),
            Err(e) => (
                None,
                Some(Diagnostic::new(
                    RuleCode::IndexDecode,
                    Location::artifact(),
                    format!("prebuilt index section failed to decode: {e}"),
                )),
            ),
        };
        let stamp = use_cache
            .then(|| AuditStamp::load_for(path))
            .flatten()
            .filter(|s| s.certifies(reader.header().checksum, self.config.verifier.digest()));
        let mut report = self.audit_set(
            &set,
            &reader.header().gate_set,
            index.as_ref(),
            stamp.as_ref(),
        );
        if let Some(d) = index_diag {
            report.diagnostics.insert(0, d);
        }
        report.artifact = path.display().to_string();
        report.artifact_checksum = reader.header().checksum;
        report.generator_version = reader.header().generator_version;
        Ok(report)
    }

    /// Audits an in-memory ECC set (plus, optionally, the prebuilt index
    /// that shipped with it). `cache` is the verified-cache sidecar; pass
    /// `None` to force full semantic re-verification.
    pub fn audit_set(
        &self,
        set: &EccSet,
        gate_set_name: &str,
        index: Option<&TransformationIndex>,
        cache: Option<&AuditStamp>,
    ) -> AuditReport {
        let verifier_digest = self.config.verifier.digest();
        let digests: Vec<u64> = set
            .eccs
            .iter()
            .map(|ecc| class_digest(ecc, set.num_qubits, set.num_params, verifier_digest))
            .collect();
        let cached: HashSet<u64> = cache
            .map(|s| s.class_digests.iter().copied().collect())
            .unwrap_or_default();

        let mut diagnostics = Vec::new();
        let mut cache_hits = 0usize;

        // Instruction shape lints run first: a class whose operand shapes
        // are broken (E004/E005) cannot be simulated, so the semantic pass
        // must not be pointed at it. Gate-set violations (E003) keep their
        // semantic check — an out-of-set gate still has well-defined
        // semantics.
        let instruction_diags = lint_instructions(set, gate_set_name);
        let shape_broken: HashSet<usize> = instruction_diags
            .iter()
            .filter(|d| {
                matches!(
                    d.rule,
                    RuleCode::MalformedInstruction | RuleCode::DanglingParamIndex
                )
            })
            .filter_map(|d| d.location.ecc)
            .collect();

        // Pass 1: semantic re-verification, parallel over classes. The
        // vendored rayon stand-in collects in input order, so diagnostics
        // come out deterministic regardless of thread count.
        let work: Vec<(usize, &Ecc)> = set
            .eccs
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                if shape_broken.contains(i) {
                    return false;
                }
                let hit = cached.contains(&digests[*i]);
                cache_hits += usize::from(hit);
                !hit
            })
            .collect();
        let threads = if self.config.threads == 0 {
            rayon::current_num_threads()
        } else {
            self.config.threads
        };
        let verifier_config = self.config.verifier.clone();
        let class_reports: Vec<(usize, quartz_verify::ClassReport)> = work
            .par_iter()
            .with_max_threads(threads)
            .map(|(i, ecc)| {
                let mut verifier = Verifier::new(verifier_config.clone());
                (*i, verifier.verify_class(ecc.circuits()))
            })
            .collect();
        for (ecc_idx, class_report) in &class_reports {
            for (member, failure) in &class_report.failures {
                let (rule, message) = match failure {
                    MemberFailure::NotEquivalent => (
                        RuleCode::SemanticNotEquivalent,
                        format!(
                            "circuit {member} is not equivalent to the representative \
                             of class {ecc_idx}"
                        ),
                    ),
                    MemberFailure::Error(e) => (
                        RuleCode::SemanticQueryError,
                        format!("circuit {member} of class {ecc_idx} cannot be verified: {e}"),
                    ),
                };
                diagnostics.push(Diagnostic::new(
                    rule,
                    Location::circuit(*ecc_idx, *member),
                    message,
                ));
            }
        }

        // Pass 2: structural lints.
        diagnostics.extend(instruction_diags);
        diagnostics.extend(lint_canonical_patterns(set));
        diagnostics.extend(lint_transformation_overlap(set));
        let fresh = transformations_from_ecc_set(set, true);
        if let Some(index) = index {
            diagnostics.extend(lint_prebuilt_index(index, &fresh));
        }
        diagnostics.extend(lint_dead_rules(&fresh, self.config.gamma));

        // Classes proven sound this run or by the cache are stampable; a
        // class with a semantic failure — or one the semantic pass had to
        // skip because its shape is broken — must never enter a sidecar.
        let mut unsound: HashSet<usize> = class_reports
            .iter()
            .filter(|(_, r)| !r.is_sound())
            .map(|(i, _)| *i)
            .collect();
        unsound.extend(shape_broken);
        let class_digests = digests
            .iter()
            .enumerate()
            .filter(|(i, _)| !unsound.contains(i))
            .map(|(_, d)| *d)
            .collect();

        AuditReport {
            artifact: "<in-memory>".to_string(),
            gate_set: gate_set_name.to_string(),
            artifact_checksum: 0,
            generator_version: GENERATOR_VERSION,
            verifier_digest,
            classes: set.eccs.len(),
            cache_hits,
            class_digests,
            diagnostics,
        }
    }
}

/// Resolves a header gate-set name to one of the known gate sets
/// (case-insensitive). `None` for unknown names.
fn known_gate_set(name: &str) -> Option<GateSet> {
    [
        GateSet::nam(),
        GateSet::ibm(),
        GateSet::rigetti(),
        GateSet::clifford_t(),
    ]
    .into_iter()
    .find(|gs| gs.name().eq_ignore_ascii_case(name))
}

/// Per-instruction lints: gate-set membership, operand shape, dangling
/// parameter slots.
fn lint_instructions(set: &EccSet, gate_set_name: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let gate_set = known_gate_set(gate_set_name);
    if gate_set.is_none() {
        out.push(Diagnostic::new(
            RuleCode::UnknownGateSet,
            Location::artifact(),
            format!(
                "gate-set name \"{gate_set_name}\" is not a known set \
                 (Nam/IBM/Rigetti/CliffordT); membership lint skipped"
            ),
        ));
    }
    for (e, ecc) in set.eccs.iter().enumerate() {
        for (c, circuit) in ecc.circuits().iter().enumerate() {
            for (i, instr) in circuit.instructions().iter().enumerate() {
                let at = Location::instruction(e, c, i);
                if let Some(gs) = &gate_set {
                    if !gs.contains(instr.gate) {
                        out.push(Diagnostic::new(
                            RuleCode::GateSetViolation,
                            at,
                            format!("gate {:?} is not in the {} gate set", instr.gate, gs.name()),
                        ));
                    }
                }
                if instr.qubits.len() != instr.gate.num_qubits() {
                    out.push(Diagnostic::new(
                        RuleCode::MalformedInstruction,
                        at,
                        format!(
                            "gate {:?} takes {} qubit operand(s), found {}",
                            instr.gate,
                            instr.gate.num_qubits(),
                            instr.qubits.len()
                        ),
                    ));
                }
                if let Some(&q) = instr.qubits.iter().find(|&&q| q >= circuit.num_qubits()) {
                    out.push(Diagnostic::new(
                        RuleCode::MalformedInstruction,
                        at,
                        format!(
                            "qubit operand {q} is out of range for a {}-qubit circuit",
                            circuit.num_qubits()
                        ),
                    ));
                }
                if instr
                    .qubits
                    .iter()
                    .enumerate()
                    .any(|(a, qa)| instr.qubits[..a].contains(qa))
                {
                    out.push(Diagnostic::new(
                        RuleCode::MalformedInstruction,
                        at,
                        "duplicate qubit operand".to_string(),
                    ));
                }
                if instr.params.len() != instr.gate.num_params() {
                    out.push(Diagnostic::new(
                        RuleCode::MalformedInstruction,
                        at,
                        format!(
                            "gate {:?} takes {} parameter(s), found {}",
                            instr.gate,
                            instr.gate.num_params(),
                            instr.params.len()
                        ),
                    ));
                }
                // Coefficient vectors are length-polymorphic (shorter than
                // the declared parameter count is fine); only a *nonzero*
                // coefficient on a slot past `num_params` is dangling.
                for expr in &instr.params {
                    if let Some(slot) = expr
                        .coeffs()
                        .iter()
                        .enumerate()
                        .skip(set.num_params)
                        .find_map(|(slot, &c)| (c != 0).then_some(slot))
                    {
                        out.push(Diagnostic::new(
                            RuleCode::DanglingParamIndex,
                            at,
                            format!(
                                "parameter expression references formal parameter p{slot} \
                                 but the set declares only {}",
                                set.num_params
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Stored pattern circuits must be in canonical sequence form: the
/// optimizer canonicalizes every circuit it deduplicates, so a
/// non-canonical stored pattern indicates a generator that disagrees with
/// the search about circuit identity.
fn lint_canonical_patterns(set: &EccSet) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (e, ecc) in set.eccs.iter().enumerate() {
        for (c, circuit) in ecc.circuits().iter().enumerate() {
            if &canonicalize(circuit) != circuit {
                out.push(Diagnostic::new(
                    RuleCode::NonCanonicalPattern,
                    Location::circuit(e, c),
                    "stored circuit is not the lexicographically smallest topological \
                     order of its DAG"
                        .to_string(),
                ));
            }
        }
    }
    out
}

/// Cross-class duplicate and within-class no-op transformation lints,
/// both up to commutation (canonical form).
fn lint_transformation_overlap(set: &EccSet) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut seen: HashMap<(Circuit, Circuit), usize> = HashMap::new();
    for (e, ecc) in set.eccs.iter().enumerate() {
        let canon: Vec<Circuit> = ecc.circuits().iter().map(canonicalize).collect();
        let rep = &canon[0];
        for (c, member) in canon.iter().enumerate().skip(1) {
            if member == rep {
                out.push(Diagnostic::new(
                    RuleCode::NoOpTransformation,
                    Location::circuit(e, c),
                    "circuit equals the representative up to commutation; the induced \
                     transformation rewrites circuits to themselves"
                        .to_string(),
                ));
                continue;
            }
            for (target, rewrite) in [(member, rep), (rep, member)] {
                if target.is_empty() {
                    continue;
                }
                let key = (target.clone(), rewrite.clone());
                match seen.get(&key) {
                    Some(&first) if first != e => {
                        out.push(Diagnostic::new(
                            RuleCode::DuplicateTransformation,
                            Location::circuit(e, c),
                            format!(
                                "class induces a transformation already induced by \
                                 class {first} (identical up to commutation)"
                            ),
                        ));
                    }
                    Some(_) => {}
                    None => {
                        seen.insert(key, e);
                    }
                }
            }
        }
    }
    out
}

/// The prebuilt index must describe exactly the transformation list the
/// payload induces today: same transformations, same anchor buckets. A
/// mismatch means the index was built by a different pipeline than the
/// payload claims — dispatch would silently skip or misroute rules.
fn lint_prebuilt_index(index: &TransformationIndex, fresh: &[Transformation]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if index.transformations() != fresh {
        out.push(Diagnostic::new(
            RuleCode::StaleIndex,
            Location::artifact(),
            format!(
                "prebuilt index stores {} transformation(s) but the ECC payload \
                 induces {}; the index is stale relative to its own payload",
                index.len(),
                fresh.len()
            ),
        ));
        // Bucket comparison against a rebuilt index would only restate the
        // mismatch.
        return out;
    }
    let rebuilt = TransformationIndex::new(fresh.to_vec());
    for (gate_idx, (stored, expected)) in index
        .anchor_buckets()
        .iter()
        .zip(rebuilt.anchor_buckets())
        .enumerate()
    {
        if stored != expected {
            out.push(Diagnostic::new(
                RuleCode::StaleIndex,
                Location::artifact(),
                format!(
                    "anchor bucket for {:?} disagrees with the bucket rebuilt from \
                     the payload ({} vs {} entries)",
                    quartz_ir::ALL_GATES[gate_idx],
                    stored.len(),
                    expected.len()
                ),
            ));
        }
    }
    out
}

/// Dead-rule analysis (DESIGN.md §11): the search admits a candidate only
/// when `cost < γ · best`, and a candidate's cost is at least
/// `best + Δ` for a rewrite with additive cost delta Δ. So a rule with
/// Δ ≥ 1 under a model cannot fire while `best < Δ / (γ − 1)` — with the
/// default γ = 1.0001, not until the incumbent best cost exceeds 10 000
/// gates. A rule whose delta is positive under *every* additive model is
/// unreachable in any additive-model search at realistic scales; it is
/// dead weight in the artifact.
fn lint_dead_rules(xforms: &[Transformation], gamma: f64) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let additive_cost = |model: CostModel, circuit: &Circuit| -> isize {
        circuit
            .instructions()
            .iter()
            .map(|i| {
                model
                    .instruction_cost(i)
                    .expect("CostModel::ADDITIVE models cost every instruction")
                    as isize
            })
            .sum()
    };
    let horizon = if gamma > 1.0 {
        (1.0 / (gamma - 1.0)).round() as i64
    } else {
        i64::MAX
    };
    for (id, xform) in xforms.iter().enumerate() {
        let deltas: Vec<(CostModel, isize)> = CostModel::ADDITIVE
            .iter()
            .map(|&m| {
                (
                    m,
                    additive_cost(m, &xform.rewrite) - additive_cost(m, &xform.target),
                )
            })
            .collect();
        if deltas.iter().all(|&(_, d)| d > 0) {
            let detail: Vec<String> = deltas.iter().map(|(m, d)| format!("{m:?}: +{d}")).collect();
            out.push(Diagnostic::new(
                RuleCode::DeadRule,
                Location::artifact(),
                format!(
                    "transformation {id} increases cost under every additive model \
                     ({}); with γ = {gamma} it cannot fire until the incumbent best \
                     cost exceeds {horizon}",
                    detail.join(", ")
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stamp() -> AuditStamp {
        AuditStamp {
            artifact_checksum: 0xDEAD_BEEF_0BAD_F00D,
            generator_version: GENERATOR_VERSION,
            verifier_digest: 0x0123_4567_89AB_CDEF,
            errors: 0,
            warnings: 3,
            class_digests: vec![0, 1, u64::MAX],
        }
    }

    #[test]
    fn stamp_json_round_trips_in_memory() {
        let stamp = sample_stamp();
        assert_eq!(AuditStamp::parse(&stamp.to_json()).unwrap(), stamp);
    }

    #[test]
    fn stamp_parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{ not json ]",
            "{\"schema_version\": 999}",
            "{\"schema_version\": 1}",
            "{\"schema_version\": 1, \"artifact_checksum\": \"0xnope\"}",
        ] {
            assert!(AuditStamp::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn certification_requires_clean_matching_stamp() {
        let stamp = sample_stamp();
        assert!(stamp.certifies(stamp.artifact_checksum, stamp.verifier_digest));
        assert!(!stamp.certifies(stamp.artifact_checksum + 1, stamp.verifier_digest));
        assert!(!stamp.certifies(stamp.artifact_checksum, stamp.verifier_digest + 1));
        let failed = AuditStamp {
            errors: 1,
            ..sample_stamp()
        };
        assert!(!failed.certifies(failed.artifact_checksum, failed.verifier_digest));
    }

    #[test]
    fn location_display_is_the_grep_contract() {
        assert_eq!(Location::artifact().to_string(), "artifact");
        assert_eq!(Location::ecc(3).to_string(), "ecc 3");
        assert_eq!(Location::circuit(3, 1).to_string(), "ecc 3 / circuit 1");
        assert_eq!(
            Location::instruction(3, 1, 7).to_string(),
            "ecc 3 / circuit 1 / instruction 7"
        );
    }

    #[test]
    fn rule_codes_are_unique_and_severity_follows_the_prefix() {
        let all = [
            RuleCode::SemanticNotEquivalent,
            RuleCode::SemanticQueryError,
            RuleCode::GateSetViolation,
            RuleCode::MalformedInstruction,
            RuleCode::DanglingParamIndex,
            RuleCode::StaleIndex,
            RuleCode::IndexDecode,
            RuleCode::DuplicateTransformation,
            RuleCode::NoOpTransformation,
            RuleCode::NonCanonicalPattern,
            RuleCode::DeadRule,
            RuleCode::UnknownGateSet,
        ];
        let codes: HashSet<&str> = all.iter().map(|r| r.code()).collect();
        assert_eq!(codes.len(), all.len());
        for rule in all {
            let expected = if rule.code().starts_with('E') {
                Severity::Error
            } else {
                Severity::Warning
            };
            assert_eq!(rule.severity(), expected, "{rule}");
        }
    }

    #[test]
    fn json_string_escapes_control_characters() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\n\t\u{1}"), "\"x\\n\\t\\u0001\"");
    }
}
