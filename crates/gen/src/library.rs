//! Persisted transformation libraries: the `QTZL` binary artifact format
//! (DESIGN.md §7).
//!
//! ECC-set generation and verification are an *offline* phase; their product
//! — the transformation library — is reused across every optimization run.
//! This module persists that product as a compact, versioned, checksummed
//! binary artifact so services start from a cold file read instead of
//! seconds of generation:
//!
//! * a fixed 72-byte header ([`LibraryHeader`]) carrying the format version,
//!   gate set, `(n, q, m)` parameters, payload counts, the generator
//!   version, section lengths, and an FNV-1a 64-bit checksum covering the
//!   header prefix and the body;
//! * format v2 only: a **class offset table** ([`ClassTable`], DESIGN.md
//!   §12) between the header and the payload — per-class byte ranges and
//!   content digests plus shard provenance — which is what lets
//!   [`crate::LazyLibrary`] decode classes on first touch instead of at
//!   load;
//! * an **ECC payload** section: the lossless binary encoding of the
//!   [`EccSet`];
//! * an optional **prebuilt index** section: the extracted
//!   [`Transformation`] list plus the anchor buckets and pattern histograms
//!   of its [`TransformationIndex`], so loaders skip both generation *and*
//!   index construction.
//!
//! [`LibraryReader`] validates the header (magic, version, section lengths)
//! before touching the body, borrows section bytes zero-copy from the input
//! buffer, and verifies the checksum before decoding. The `quartz-lib` CLI
//! (`crates/gen/src/bin/quartz-lib.rs`) wraps this module for the
//! generate → pack → inspect workflow; committed artifacts live under
//! `libraries/` at the workspace root.
//!
//! Every integer is little-endian. The byte-level layout, the versioning
//! rules, and a worked hexdump of a tiny artifact are specified in
//! DESIGN.md §7.
//!
//! # Examples
//!
//! Pack an ECC set (with its prebuilt index) and read it back losslessly:
//!
//! ```
//! use quartz_gen::{Ecc, EccSet, Library};
//! use quartz_ir::{Circuit, Gate, Instruction};
//!
//! let mut hh = Circuit::new(1, 0);
//! hh.push(Instruction::new(Gate::H, vec![0], vec![]));
//! hh.push(Instruction::new(Gate::H, vec![0], vec![]));
//! let mut set = EccSet::new(1, 0);
//! set.eccs.push(Ecc::new(vec![hh, Circuit::new(1, 0)]));
//!
//! let library = Library::new("Nam", set.clone(), true);
//! let bytes = library.to_bytes();
//! let back = Library::from_bytes(&bytes).unwrap();
//! assert_eq!(back.ecc_set(), &set);
//! assert_eq!(back.header().gate_set, "Nam");
//! assert_eq!(back.index().unwrap().len(), 1); // HH → empty
//! ```
//!
//! Round-trip through a file:
//!
//! ```
//! use quartz_gen::{EccSet, Library};
//!
//! let dir = std::env::temp_dir().join("quartz_library_doctest");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("empty.qtzl");
//!
//! let library = Library::new("Nam", EccSet::new(2, 0), false);
//! library.save(&path).unwrap();
//! let back = Library::load(&path).unwrap();
//! assert_eq!(back.ecc_set(), library.ecc_set());
//! assert!(back.index().is_none());
//! ```

use crate::ecc::{Ecc, EccSet};
use crate::index::TransformationIndex;
use crate::xform::{transformations_from_ecc_set, Transformation};
use quartz_ir::{Circuit, Gate, Instruction, ParamExpr, ALL_GATES};
use std::fmt;
use std::io;
use std::path::Path;

/// The four magic bytes every artifact starts with.
pub const MAGIC: [u8; 4] = *b"QTZL";

/// The original (eager) artifact format version. Readers accept versions
/// [`FORMAT_VERSION`] and [`FORMAT_VERSION_V2`] and reject everything else
/// (see DESIGN.md §7 and §12 for the compatibility rules).
pub const FORMAT_VERSION: u16 = 1;

/// Format version 2: identical header and section encodings, plus a
/// [`ClassTable`] between the header and the ECC payload carrying per-class
/// byte ranges, per-class content digests, an index-section digest, and
/// shard provenance. v2 is what makes lazy per-class decoding and sharding
/// possible; v1 artifacts keep loading through the eager path unchanged.
pub const FORMAT_VERSION_V2: u16 = 2;

/// Version of the generation pipeline (RepGen + pruning + transformation
/// extraction + anchor selection). Bumped whenever regenerating the same
/// `(gate set, n, q, m)` would produce a different artifact; `quartz-lib
/// verify-checksum` fails artifacts whose recorded generator version is
/// stale.
pub const GENERATOR_VERSION: u32 = 1;

/// Fixed size of the artifact header in bytes.
pub const HEADER_LEN: usize = 72;

const GATE_SET_NAME_LEN: usize = 12;

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into a running FNV-1a 64 state (each per-byte step is a
/// bijection of the state, so any single-byte change propagates to the
/// final value).
fn fnv1a64(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a 64-bit checksum (DESIGN.md §7.3). The artifact's content checksum
/// is this hash over the first 64 header bytes (the checksum field itself
/// excluded) followed by the body, so every header field is
/// integrity-checked too — see [`artifact_checksum`].
///
/// # Examples
///
/// ```
/// // The FNV-1a offset basis is the checksum of the empty string.
/// assert_eq!(quartz_gen::checksum64(b""), 0xcbf2_9ce4_8422_2325);
/// ```
pub fn checksum64(bytes: &[u8]) -> u64 {
    fnv1a64(FNV_OFFSET_BASIS, bytes)
}

/// The checksum recorded at header offset 64: FNV-1a 64 over the header
/// prefix (bytes 0–63) chained into the body. Covering the header means a
/// flipped `q`, `m`, gate-set byte, or section length is caught by
/// validation, not just a flipped body byte.
pub fn artifact_checksum(header_prefix: &[u8], body: &[u8]) -> u64 {
    fnv1a64(fnv1a64(FNV_OFFSET_BASIS, header_prefix), body)
}

/// Wraps an I/O error so its message names the offending path — the one
/// error-context rule every persistence entry point in this workspace
/// follows ([`EccSet::save`], [`Library::load`], the optimizer's library
/// cache, …).
pub fn path_io_error(path: &Path, e: io::Error) -> io::Error {
    io::Error::new(e.kind(), format!("{}: {e}", path.display()))
}

/// Error produced when reading or decoding a library artifact.
#[derive(Debug)]
pub enum LibraryError {
    /// The buffer does not start with the `QTZL` magic.
    NotALibrary,
    /// The artifact's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u16),
    /// The buffer ended before the structure it claims to contain.
    Truncated {
        /// What was being read when the input ran out.
        context: &'static str,
    },
    /// The artifact checksum does not match the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum recomputed over the body.
        found: u64,
    },
    /// The body decoded to something structurally invalid.
    Malformed(String),
    /// A v2 class payload's bytes do not hash to the digest recorded for it
    /// in the artifact's class table — the class was corrupted after pack
    /// (or the table entry was cooked to point at the wrong range).
    ClassDigestMismatch {
        /// Position of the class in this artifact's table.
        class: usize,
        /// Digest recorded in the class table.
        expected: u64,
        /// Digest recomputed over the class's payload bytes.
        found: u64,
    },
    /// A v2 index section's bytes do not hash to the digest recorded in the
    /// class table.
    IndexDigestMismatch {
        /// Digest recorded in the class table.
        expected: u64,
        /// Digest recomputed over the index section bytes.
        found: u64,
    },
    /// The loader requires a live audit stamp
    /// ([`crate::AuditStamp::certifies`]) but the artifact has none — the
    /// sidecar is missing, stale, or records a failed audit.
    NotAudited {
        /// The artifact path, as given to the loader.
        path: String,
    },
    /// An I/O error, with the offending path in the message.
    Io(io::Error),
}

impl fmt::Display for LibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibraryError::NotALibrary => {
                write!(f, "not a quartz library artifact (bad QTZL magic)")
            }
            LibraryError::UnsupportedVersion(v) => write!(
                f,
                "unsupported library format version {v} (this build reads versions \
                 {FORMAT_VERSION} and {FORMAT_VERSION_V2})"
            ),
            LibraryError::Truncated { context } => {
                write!(f, "artifact truncated while reading {context}")
            }
            LibraryError::ChecksumMismatch { expected, found } => write!(
                f,
                "artifact checksum mismatch: header says {expected:#018x}, content hashes to {found:#018x}"
            ),
            LibraryError::Malformed(msg) => write!(f, "malformed library artifact: {msg}"),
            LibraryError::ClassDigestMismatch {
                class,
                expected,
                found,
            } => write!(
                f,
                "class {class} digest mismatch: table says {expected:#018x}, payload hashes \
                 to {found:#018x}"
            ),
            LibraryError::IndexDigestMismatch { expected, found } => write!(
                f,
                "index section digest mismatch: table says {expected:#018x}, section hashes \
                 to {found:#018x}"
            ),
            LibraryError::NotAudited { path } => write!(
                f,
                "{path}: no live audit stamp — run `quartz-lib audit {path} --write-stamp` \
                 (the loader was configured to require audited artifacts)"
            ),
            LibraryError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LibraryError {}

impl From<io::Error> for LibraryError {
    fn from(e: io::Error) -> Self {
        LibraryError::Io(e)
    }
}

/// The decoded fixed-size header of a library artifact (DESIGN.md §7.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibraryHeader {
    /// Artifact format version (currently always [`FORMAT_VERSION`]).
    pub format_version: u16,
    /// Name of the gate set the library was generated for (≤ 12 ASCII
    /// bytes; informational).
    pub gate_set: String,
    /// `n`: the largest gate count of any member circuit.
    pub max_gates: u32,
    /// `q`: number of qubits every member circuit is defined over.
    pub num_qubits: u32,
    /// `m`: number of formal parameters.
    pub num_params: u32,
    /// Number of equivalence classes in the ECC payload.
    pub num_eccs: u32,
    /// Total circuits across all classes.
    pub total_circuits: u32,
    /// Total instructions across all circuits.
    pub total_instructions: u32,
    /// [`GENERATOR_VERSION`] of the pipeline that produced the artifact.
    pub generator_version: u32,
    /// Byte length of the ECC payload section.
    pub ecc_len: u64,
    /// Byte length of the prebuilt index section (0 = absent).
    pub index_len: u64,
    /// FNV-1a 64 checksum of the header prefix (bytes 0–63) followed by the
    /// body — see [`artifact_checksum`].
    pub checksum: u64,
}

impl LibraryHeader {
    /// Returns `true` when the artifact carries a prebuilt index section.
    pub fn has_index(&self) -> bool {
        self.index_len > 0
    }

    pub(crate) fn encode(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..4].copy_from_slice(&MAGIC);
        out[4..6].copy_from_slice(&self.format_version.to_le_bytes());
        out[6..8].copy_from_slice(&(HEADER_LEN as u16).to_le_bytes());
        let name = self.gate_set.as_bytes();
        let n = name.len().min(GATE_SET_NAME_LEN);
        out[8..8 + n].copy_from_slice(&name[..n]);
        out[20..24].copy_from_slice(&self.max_gates.to_le_bytes());
        out[24..28].copy_from_slice(&self.num_qubits.to_le_bytes());
        out[28..32].copy_from_slice(&self.num_params.to_le_bytes());
        out[32..36].copy_from_slice(&self.num_eccs.to_le_bytes());
        out[36..40].copy_from_slice(&self.total_circuits.to_le_bytes());
        out[40..44].copy_from_slice(&self.total_instructions.to_le_bytes());
        out[44..48].copy_from_slice(&self.generator_version.to_le_bytes());
        out[48..56].copy_from_slice(&self.ecc_len.to_le_bytes());
        out[56..64].copy_from_slice(&self.index_len.to_le_bytes());
        out[64..72].copy_from_slice(&self.checksum.to_le_bytes());
        out
    }

    pub(crate) fn decode(bytes: &[u8]) -> Result<LibraryHeader, LibraryError> {
        if bytes.len() < 4 || bytes[0..4] != MAGIC {
            return Err(LibraryError::NotALibrary);
        }
        if bytes.len() < HEADER_LEN {
            return Err(LibraryError::Truncated { context: "header" });
        }
        let u16_at = |o: usize| u16::from_le_bytes([bytes[o], bytes[o + 1]]);
        let u32_at =
            |o: usize| u32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]);
        let u64_at = |o: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[o..o + 8]);
            u64::from_le_bytes(b)
        };
        let format_version = u16_at(4);
        if format_version != FORMAT_VERSION && format_version != FORMAT_VERSION_V2 {
            return Err(LibraryError::UnsupportedVersion(format_version));
        }
        let header_len = u16_at(6) as usize;
        if header_len != HEADER_LEN {
            return Err(LibraryError::Malformed(format!(
                "header length field is {header_len}, expected {HEADER_LEN}"
            )));
        }
        let name_bytes = &bytes[8..8 + GATE_SET_NAME_LEN];
        let name_end = name_bytes
            .iter()
            .position(|&b| b == 0)
            .unwrap_or(GATE_SET_NAME_LEN);
        let gate_set = String::from_utf8_lossy(&name_bytes[..name_end]).into_owned();
        Ok(LibraryHeader {
            format_version,
            gate_set,
            max_gates: u32_at(20),
            num_qubits: u32_at(24),
            num_params: u32_at(28),
            num_eccs: u32_at(32),
            total_circuits: u32_at(36),
            total_instructions: u32_at(40),
            generator_version: u32_at(44),
            ecc_len: u64_at(48),
            index_len: u64_at(56),
            checksum: u64_at(64),
        })
    }
}

// ---------------------------------------------------------------------------
// Body encoding (circuits, ECC payload, prebuilt index)
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Checked narrowing for the format's u16 fields: silent truncation would
/// produce a checksum-valid artifact encoding a *different* circuit, so an
/// out-of-range set must fail loudly at pack time instead.
fn cast_u16(what: &str, n: usize) -> u16 {
    u16::try_from(n).unwrap_or_else(|_| panic!("{what} ({n}) exceeds the format's u16 limit"))
}

pub(crate) fn encode_circuit(out: &mut Vec<u8>, circuit: &Circuit) {
    put_u16(out, cast_u16("circuit qubit count", circuit.num_qubits()));
    put_u16(
        out,
        cast_u16("circuit parameter count", circuit.num_params()),
    );
    put_u32(
        out,
        u32::try_from(circuit.gate_count()).expect("gate count exceeds the format's u32 limit"),
    );
    for instr in circuit.instructions() {
        out.push(instr.gate.index() as u8);
        for &q in &instr.qubits {
            put_u16(out, cast_u16("qubit operand", q));
        }
        for p in &instr.params {
            put_u16(out, cast_u16("coefficient count", p.coeffs().len()));
            for &c in p.coeffs() {
                put_i32(out, c);
            }
            put_i32(out, p.const_pi4());
        }
    }
}

/// Encodes one equivalence class exactly as it appears inside the ECC
/// payload section: a `u32` circuit count followed by the encoded circuits.
/// v1's payload is the concatenation of these, and v2 keeps the encoding
/// byte-identical — the class table only records where each one starts.
pub(crate) fn encode_ecc_class(out: &mut Vec<u8>, ecc: &Ecc) {
    put_u32(out, ecc.len() as u32);
    for circuit in ecc.circuits() {
        encode_circuit(out, circuit);
    }
}

fn encode_ecc_payload(set: &EccSet) -> Vec<u8> {
    let mut out = Vec::new();
    for ecc in &set.eccs {
        encode_ecc_class(&mut out, ecc);
    }
    out
}

pub(crate) fn encode_index_section(index: &TransformationIndex) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, index.len() as u32);
    for xform in index.transformations() {
        encode_circuit(&mut out, &xform.target);
        encode_circuit(&mut out, &xform.rewrite);
    }
    for histogram in index.pattern_histograms() {
        for g in ALL_GATES {
            put_u32(&mut out, histogram.count(g) as u32);
        }
    }
    for bucket in index.anchor_buckets() {
        put_u32(&mut out, bucket.len() as u32);
        for &id in bucket {
            put_u32(&mut out, id as u32);
        }
    }
    out
}

/// A bounds-checked little-endian cursor over a body section.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], LibraryError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(LibraryError::Truncated { context })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, LibraryError> {
        Ok(self.take(1, context)?[0])
    }

    fn u16(&mut self, context: &'static str) -> Result<u16, LibraryError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, LibraryError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, LibraryError> {
        let b = self.take(8, context)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }

    fn i32(&mut self, context: &'static str) -> Result<i32, LibraryError> {
        Ok(self.u32(context)? as i32)
    }

    pub(crate) fn position(&self) -> usize {
        self.pos
    }

    pub(crate) fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn decode_circuit(cur: &mut Cursor<'_>) -> Result<Circuit, LibraryError> {
    let num_qubits = cur.u16("circuit qubit count")? as usize;
    let num_params = cur.u16("circuit parameter count")? as usize;
    let gate_count = cur.u32("circuit gate count")? as usize;
    let mut circuit = Circuit::new(num_qubits, num_params);
    for _ in 0..gate_count {
        let gate_index = cur.u8("gate index")? as usize;
        let gate = *ALL_GATES
            .get(gate_index)
            .ok_or_else(|| LibraryError::Malformed(format!("unknown gate index {gate_index}")))?;
        let mut qubits = Vec::with_capacity(gate.num_qubits());
        for _ in 0..gate.num_qubits() {
            let q = cur.u16("qubit operand")? as usize;
            if q >= num_qubits {
                return Err(LibraryError::Malformed(format!(
                    "qubit {q} out of range for circuit with {num_qubits} qubits"
                )));
            }
            if qubits.contains(&q) {
                return Err(LibraryError::Malformed(format!(
                    "repeated qubit operand {q} for gate {gate}"
                )));
            }
            qubits.push(q);
        }
        let mut params = Vec::with_capacity(gate.num_params());
        for _ in 0..gate.num_params() {
            let coeff_count = cur.u16("parameter coefficient count")? as usize;
            // Same shape rule as the JSON codec: one coefficient per formal
            // parameter of the circuit. This also bounds the read.
            if coeff_count != num_params {
                return Err(LibraryError::Malformed(format!(
                    "parameter expression has {coeff_count} coefficients, circuit has \
                     {num_params} parameters"
                )));
            }
            let mut coeffs = Vec::with_capacity(coeff_count);
            for _ in 0..coeff_count {
                coeffs.push(cur.i32("parameter coefficient")?);
            }
            let const_pi4 = cur.i32("parameter constant")?;
            params.push(ParamExpr::from_parts(coeffs, const_pi4));
        }
        circuit.push(Instruction::new(gate, qubits, params));
    }
    Ok(circuit)
}

/// Decodes one equivalence class (the inverse of [`encode_ecc_class`]).
pub(crate) fn decode_ecc_class(cur: &mut Cursor<'_>) -> Result<Ecc, LibraryError> {
    let circuit_count = cur.u32("ECC circuit count")? as usize;
    if circuit_count == 0 {
        return Err(LibraryError::Malformed(
            "an ECC must contain at least one circuit".to_string(),
        ));
    }
    let mut circuits = Vec::with_capacity(circuit_count.min(1024));
    for _ in 0..circuit_count {
        circuits.push(decode_circuit(cur)?);
    }
    // The payload stores circuits in representative-first (≺-sorted)
    // order; Ecc::new's stable sort therefore reproduces it exactly.
    Ok(Ecc::new(circuits))
}

fn check_payload_totals(
    header: &LibraryHeader,
    total_circuits: usize,
    total_instructions: usize,
) -> Result<(), LibraryError> {
    if total_circuits != header.total_circuits as usize
        || total_instructions != header.total_instructions as usize
    {
        return Err(LibraryError::Malformed(format!(
            "payload counts ({total_circuits} circuits, {total_instructions} instructions) \
             disagree with the header ({}, {})",
            header.total_circuits, header.total_instructions
        )));
    }
    Ok(())
}

fn decode_ecc_payload(bytes: &[u8], header: &LibraryHeader) -> Result<EccSet, LibraryError> {
    let mut cur = Cursor::new(bytes);
    let mut set = EccSet::new(header.num_qubits as usize, header.num_params as usize);
    let mut total_circuits = 0usize;
    let mut total_instructions = 0usize;
    for _ in 0..header.num_eccs {
        let ecc = decode_ecc_class(&mut cur)?;
        total_circuits += ecc.len();
        total_instructions += ecc
            .circuits()
            .iter()
            .map(Circuit::gate_count)
            .sum::<usize>();
        set.eccs.push(ecc);
    }
    if !cur.finished() {
        return Err(LibraryError::Malformed(
            "trailing bytes after the last ECC of the payload".to_string(),
        ));
    }
    check_payload_totals(header, total_circuits, total_instructions)?;
    Ok(set)
}

pub(crate) fn decode_index_section(bytes: &[u8]) -> Result<TransformationIndex, LibraryError> {
    let mut cur = Cursor::new(bytes);
    let count = cur.u32("transformation count")? as usize;
    let mut transformations = Vec::with_capacity(count.min(65_536));
    for _ in 0..count {
        let target = decode_circuit(&mut cur)?;
        let rewrite = decode_circuit(&mut cur)?;
        transformations.push(Transformation { target, rewrite });
    }
    let mut histograms = Vec::with_capacity(count.min(65_536));
    for xform in &transformations {
        // Compare the stored counts against the already-decoded target's
        // histogram instead of materializing them one occurrence at a time —
        // the section is valid only if they agree anyway (see
        // `TransformationIndex::from_parts`), and this bounds the work by
        // the real pattern size rather than by a u32 read from the file.
        let expected = xform.target.gate_histogram();
        for g in ALL_GATES {
            let occurrences = cur.u32("histogram count")? as usize;
            if occurrences != expected.count(g) {
                return Err(LibraryError::Malformed(format!(
                    "stored histogram count for {g} ({occurrences}) does not match the \
                     target pattern ({})",
                    expected.count(g)
                )));
            }
        }
        histograms.push(*expected);
    }
    let mut buckets = Vec::with_capacity(Gate::COUNT);
    for _ in 0..Gate::COUNT {
        let len = cur.u32("anchor bucket length")? as usize;
        let mut bucket = Vec::with_capacity(len.min(65_536));
        for _ in 0..len {
            bucket.push(cur.u32("anchor bucket id")? as usize);
        }
        buckets.push(bucket);
    }
    if !cur.finished() {
        return Err(LibraryError::Malformed(
            "trailing bytes after the anchor buckets of the index section".to_string(),
        ));
    }
    TransformationIndex::from_parts(transformations, histograms, buckets)
        .map_err(LibraryError::Malformed)
}

// ---------------------------------------------------------------------------
// Format v2: the class offset table (DESIGN.md §12)
// ---------------------------------------------------------------------------

/// Content digest of one class's payload bytes, as recorded in a v2
/// [`ClassTable`]. Same recipe as the audit sidecar's
/// [`crate::audit::class_digest`] minus the verifier-configuration digest
/// (integrity needs no verifier): [`GENERATOR_VERSION`] and the set shape
/// are folded in so a digest can never validate a payload reinterpreted
/// under different `(q, m)` or a different generation pipeline.
pub fn class_payload_digest(num_qubits: u32, num_params: u32, payload: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(24 + payload.len());
    buf.extend_from_slice(&GENERATOR_VERSION.to_le_bytes());
    buf.extend_from_slice(&u64::from(num_qubits).to_le_bytes());
    buf.extend_from_slice(&u64::from(num_params).to_le_bytes());
    buf.extend_from_slice(payload);
    checksum64(&buf)
}

/// One row of a v2 class table: where a class's payload lives and what it
/// must hash to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassEntry {
    /// Index of this class in the *parent* artifact (equal to its position
    /// here for whole artifacts; the original position for shards, so a
    /// merge can put every class back where it came from).
    pub orig_class_index: u32,
    /// Byte length of the class's payload. Offsets are prefix sums; the
    /// lengths must sum exactly to the header's `ecc_len`.
    pub len: u32,
    /// [`class_payload_digest`] of the payload bytes.
    pub digest: u64,
}

/// The v2 class offset table (DESIGN.md §12): shard provenance preamble,
/// one [`ClassEntry`] per class, the shard's original transformation ids,
/// and a digest of the index section.
///
/// The v2 artifact checksum covers the header prefix *and* the encoded
/// table, so every byte of the table is validated at open; every byte of
/// the payload and index sections is in turn covered by a digest stored in
/// the table — integrity of the whole file is transitive without hashing
/// the body at open, which is what makes lazy loading sound (see the
/// DESIGN.md §12 safety argument).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClassTable {
    /// This shard's position in its group (0 for whole artifacts).
    pub shard_seq: u32,
    /// Number of shards in the group (1 for whole artifacts).
    pub shard_count: u32,
    /// `num_eccs` of the parent artifact the group was split from (0 for
    /// whole artifacts).
    pub parent_num_eccs: u32,
    /// Format version of the parent artifact (0 for whole artifacts) — the
    /// version a merge must repack in to reproduce the parent bytes.
    pub parent_format_version: u32,
    /// Transformation count of the parent's prebuilt index (0 for whole
    /// artifacts).
    pub parent_num_xforms: u32,
    /// Artifact checksum of the parent (0 for whole artifacts); a merge
    /// verifies its output against this before declaring success.
    pub parent_checksum: u64,
    /// One entry per class, in payload order.
    pub classes: Vec<ClassEntry>,
    /// For shards: the *parent* transformation ids of this shard's index
    /// section, ascending, one per local transformation. Empty for whole
    /// artifacts.
    pub xform_ids: Vec<u32>,
    /// `checksum64` of the index section bytes (0 when the section is
    /// absent).
    pub index_digest: u64,
}

/// Fixed byte length of the class-table preamble.
const CLASS_TABLE_PREAMBLE_LEN: usize = 32;

impl ClassTable {
    /// True when this artifact is one shard of a split library rather than
    /// a whole library.
    pub fn is_shard(&self) -> bool {
        self.shard_count > 1
    }

    /// Encoded byte length of the table.
    pub fn encoded_len(&self) -> usize {
        CLASS_TABLE_PREAMBLE_LEN + 16 * self.classes.len() + 4 * self.xform_ids.len() + 8
    }

    /// Byte range of class `i`'s payload within the ECC payload section.
    pub fn class_range(&self, i: usize) -> std::ops::Range<usize> {
        let start: usize = self.classes[..i].iter().map(|e| e.len as usize).sum();
        start..start + self.classes[i].len as usize
    }

    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.shard_seq);
        put_u32(out, self.shard_count);
        put_u32(out, self.parent_num_eccs);
        put_u32(out, self.xform_ids.len() as u32);
        put_u32(out, self.parent_format_version);
        put_u32(out, self.parent_num_xforms);
        out.extend_from_slice(&self.parent_checksum.to_le_bytes());
        for entry in &self.classes {
            put_u32(out, entry.orig_class_index);
            put_u32(out, entry.len);
            out.extend_from_slice(&entry.digest.to_le_bytes());
        }
        for &id in &self.xform_ids {
            put_u32(out, id);
        }
        out.extend_from_slice(&self.index_digest.to_le_bytes());
    }

    pub(crate) fn decode(
        cur: &mut Cursor<'_>,
        header: &LibraryHeader,
    ) -> Result<ClassTable, LibraryError> {
        let shard_seq = cur.u32("class table shard sequence")?;
        let shard_count = cur.u32("class table shard count")?;
        let parent_num_eccs = cur.u32("class table parent ECC count")?;
        let xform_id_count = cur.u32("class table transformation id count")? as usize;
        let parent_format_version = cur.u32("class table parent format version")?;
        let parent_num_xforms = cur.u32("class table parent transformation count")?;
        let parent_checksum = cur.u64("class table parent checksum")?;
        if shard_count == 0 || shard_seq >= shard_count {
            return Err(LibraryError::Malformed(format!(
                "class table claims shard {shard_seq} of {shard_count}"
            )));
        }
        let mut classes = Vec::with_capacity((header.num_eccs as usize).min(65_536));
        let mut payload_len = 0u64;
        for _ in 0..header.num_eccs {
            let orig_class_index = cur.u32("class table entry index")?;
            let len = cur.u32("class table entry length")?;
            let digest = cur.u64("class table entry digest")?;
            payload_len += u64::from(len);
            classes.push(ClassEntry {
                orig_class_index,
                len,
                digest,
            });
        }
        if payload_len != header.ecc_len {
            return Err(LibraryError::Malformed(format!(
                "class table lengths sum to {payload_len} bytes, header says the payload \
                 is {} bytes",
                header.ecc_len
            )));
        }
        let mut xform_ids = Vec::with_capacity(xform_id_count.min(65_536));
        for _ in 0..xform_id_count {
            let id = cur.u32("class table transformation id")?;
            if xform_ids.last().is_some_and(|&last| last >= id) {
                return Err(LibraryError::Malformed(
                    "class table transformation ids are not strictly ascending".to_string(),
                ));
            }
            xform_ids.push(id);
        }
        let index_digest = cur.u64("class table index digest")?;
        Ok(ClassTable {
            shard_seq,
            shard_count,
            parent_num_eccs,
            parent_format_version,
            parent_num_xforms,
            parent_checksum,
            classes,
            xform_ids,
            index_digest,
        })
    }
}

// ---------------------------------------------------------------------------
// Reader and owned library
// ---------------------------------------------------------------------------

/// A validating, zero-copy-friendly reader over library-artifact bytes.
///
/// Construction parses and validates only the fixed-size header (magic,
/// version, section lengths); the body is untouched until a section is
/// decoded, and section byte slices are borrowed straight from the input
/// buffer.
pub struct LibraryReader<'a> {
    header: LibraryHeader,
    /// Header bytes 0–63 — everything but the checksum field, which is what
    /// the artifact checksum covers together with the body (v1) or the
    /// class table (v2).
    header_prefix: &'a [u8],
    body: &'a [u8],
    /// v2 only: the decoded class table and its encoded length (the table
    /// sits at the start of the body; the sections follow it).
    table: Option<ClassTable>,
    sections_start: usize,
}

impl<'a> LibraryReader<'a> {
    /// Parses and validates the header — and, for v2 artifacts, the class
    /// table.
    ///
    /// # Errors
    ///
    /// Fails on a bad magic, an unsupported format version, a buffer
    /// shorter than the header's section lengths claim, or a structurally
    /// invalid class table.
    pub fn new(bytes: &'a [u8]) -> Result<Self, LibraryError> {
        let header = LibraryHeader::decode(bytes)?;
        let body = &bytes[HEADER_LEN..];
        let (table, sections_start) = if header.format_version == FORMAT_VERSION_V2 {
            let mut cur = Cursor::new(body);
            let table = ClassTable::decode(&mut cur, &header)?;
            let len = cur.position();
            (Some(table), len)
        } else {
            (None, 0)
        };
        let body_len = header
            .ecc_len
            .checked_add(header.index_len)
            .and_then(|l| usize::try_from(l).ok())
            .and_then(|l| l.checked_add(sections_start))
            .ok_or(LibraryError::Malformed(
                "section lengths overflow".to_string(),
            ))?;
        if body.len() < body_len {
            return Err(LibraryError::Truncated { context: "body" });
        }
        if body.len() > body_len {
            return Err(LibraryError::Malformed(format!(
                "{} trailing bytes after the last section",
                body.len() - body_len
            )));
        }
        Ok(LibraryReader {
            header,
            header_prefix: &bytes[..HEADER_LEN - 8],
            body,
            table,
            sections_start,
        })
    }

    /// The decoded header.
    pub fn header(&self) -> &LibraryHeader {
        &self.header
    }

    /// The decoded class table (v2 artifacts only).
    pub fn class_table(&self) -> Option<&ClassTable> {
        self.table.as_ref()
    }

    /// Recomputes the artifact checksum and compares it to the header's.
    ///
    /// For v1 the checksum covers the header prefix and the whole body; for
    /// v2 it covers the header prefix and the class table only — each body
    /// byte is instead covered by a per-class or index digest *stored in
    /// that table*, so full-file integrity still holds transitively (and
    /// lazily: see [`crate::LazyLibrary`]).
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::ChecksumMismatch`] when they differ.
    pub fn verify_checksum(&self) -> Result<(), LibraryError> {
        let covered = if self.table.is_some() {
            &self.body[..self.sections_start]
        } else {
            self.body
        };
        let found = artifact_checksum(self.header_prefix, covered);
        if found != self.header.checksum {
            return Err(LibraryError::ChecksumMismatch {
                expected: self.header.checksum,
                found,
            });
        }
        Ok(())
    }

    /// The raw ECC payload section, borrowed from the input buffer.
    pub fn ecc_bytes(&self) -> &'a [u8] {
        let start = self.sections_start;
        &self.body[start..start + self.header.ecc_len as usize]
    }

    /// The raw prebuilt index section (`None` when absent), borrowed from
    /// the input buffer.
    pub fn index_bytes(&self) -> Option<&'a [u8]> {
        if self.header.has_index() {
            Some(&self.body[self.sections_start + self.header.ecc_len as usize..])
        } else {
            None
        }
    }

    /// Decodes the ECC payload. On v2 artifacts every class payload is
    /// checked against its table digest first.
    ///
    /// # Errors
    ///
    /// Fails on truncated or structurally invalid payload bytes, a class
    /// digest mismatch (v2), or when the payload disagrees with the
    /// header's counts.
    pub fn decode_ecc_set(&self) -> Result<EccSet, LibraryError> {
        let Some(table) = &self.table else {
            return decode_ecc_payload(self.ecc_bytes(), &self.header);
        };
        let payload = self.ecc_bytes();
        let mut set = EccSet::new(
            self.header.num_qubits as usize,
            self.header.num_params as usize,
        );
        let mut offset = 0usize;
        let mut total_circuits = 0usize;
        let mut total_instructions = 0usize;
        for (i, entry) in table.classes.iter().enumerate() {
            let class_bytes = &payload[offset..offset + entry.len as usize];
            offset += entry.len as usize;
            verify_class_payload(&self.header, i, entry, class_bytes)?;
            let ecc = decode_class_payload(i, class_bytes)?;
            total_circuits += ecc.len();
            total_instructions += ecc
                .circuits()
                .iter()
                .map(Circuit::gate_count)
                .sum::<usize>();
            set.eccs.push(ecc);
        }
        check_payload_totals(&self.header, total_circuits, total_instructions)?;
        Ok(set)
    }

    /// Decodes the prebuilt index section, if present. On v2 artifacts the
    /// section bytes are checked against the table's index digest first.
    ///
    /// # Errors
    ///
    /// Fails on truncated bytes, an index digest mismatch (v2), or on an
    /// index that is structurally inconsistent (see
    /// [`TransformationIndex::from_parts`]).
    pub fn decode_index(&self) -> Result<Option<TransformationIndex>, LibraryError> {
        let Some(bytes) = self.index_bytes() else {
            return Ok(None);
        };
        if let Some(table) = &self.table {
            verify_index_section(table, bytes)?;
        }
        decode_index_section(bytes).map(Some)
    }
}

/// Checks one class payload against its v2 table entry.
pub(crate) fn verify_class_payload(
    header: &LibraryHeader,
    class: usize,
    entry: &ClassEntry,
    payload: &[u8],
) -> Result<(), LibraryError> {
    let found = class_payload_digest(header.num_qubits, header.num_params, payload);
    if found != entry.digest {
        return Err(LibraryError::ClassDigestMismatch {
            class,
            expected: entry.digest,
            found,
        });
    }
    Ok(())
}

/// Decodes one class payload, requiring it to be exactly consumed (a class
/// that decodes short would silently shift every later class in v1; in v2
/// the ranges are explicit, so a short decode is a malformed class).
pub(crate) fn decode_class_payload(class: usize, payload: &[u8]) -> Result<Ecc, LibraryError> {
    let mut cur = Cursor::new(payload);
    let ecc = decode_ecc_class(&mut cur)?;
    if !cur.finished() {
        return Err(LibraryError::Malformed(format!(
            "trailing bytes after the circuits of class {class}"
        )));
    }
    Ok(ecc)
}

/// Checks the index section bytes against the v2 table's digest.
pub(crate) fn verify_index_section(table: &ClassTable, bytes: &[u8]) -> Result<(), LibraryError> {
    let found = checksum64(bytes);
    if found != table.index_digest {
        return Err(LibraryError::IndexDigestMismatch {
            expected: table.index_digest,
            found,
        });
    }
    Ok(())
}

/// An owned, decoded library: header, ECC set, and (optionally) the
/// prebuilt dispatch index. See the module-level docs for an example.
#[derive(Debug, Clone)]
pub struct Library {
    header: LibraryHeader,
    ecc_set: EccSet,
    index: Option<TransformationIndex>,
    /// The encoded body (both sections), kept from construction/decoding so
    /// sections are serialized exactly once per library, not once per
    /// `to_bytes`/`save` call.
    body: Vec<u8>,
}

impl Library {
    /// Builds a library from an ECC set. With `with_index`, the
    /// transformation list is extracted (with common-subcircuit pruning, as
    /// [`crate::transformations_from_ecc_set`] does for the optimizer) and
    /// its dispatch index is embedded so loaders skip index construction.
    ///
    /// `gate_set` is recorded in the header (truncated to 12 bytes).
    ///
    /// # Panics
    ///
    /// Panics if the set exceeds the format's limits — ≥ 2¹⁶ qubits,
    /// parameters, or coefficients per circuit, or ≥ 2³² gates, circuits,
    /// or classes — rather than silently truncating into a checksum-valid
    /// artifact that encodes a different library.
    pub fn new(gate_set: impl Into<String>, ecc_set: EccSet, with_index: bool) -> Library {
        Library::with_format(gate_set, ecc_set, with_index, FORMAT_VERSION)
    }

    /// [`Library::new`] with an explicit artifact format version:
    /// [`FORMAT_VERSION`] (v1, eager) or [`FORMAT_VERSION_V2`] (v2, with a
    /// [`ClassTable`] enabling lazy per-class decoding). Both encode the
    /// same ECC payload and index sections byte-identically; v2 inserts the
    /// class table between header and payload and moves the checksum's
    /// coverage to header + table (see [`LibraryReader::verify_checksum`]).
    ///
    /// # Panics
    ///
    /// Panics on an unknown format version, and on the same size limits as
    /// [`Library::new`].
    pub fn with_format(
        gate_set: impl Into<String>,
        ecc_set: EccSet,
        with_index: bool,
        format_version: u16,
    ) -> Library {
        assert!(
            format_version == FORMAT_VERSION || format_version == FORMAT_VERSION_V2,
            "unknown library format version {format_version}"
        );
        let index = with_index
            .then(|| TransformationIndex::new(transformations_from_ecc_set(&ecc_set, true)));
        let mut gate_set = gate_set.into();
        gate_set.truncate(
            (0..=GATE_SET_NAME_LEN.min(gate_set.len()))
                .rev()
                .find(|&i| gate_set.is_char_boundary(i))
                .unwrap_or(0),
        );
        let count_u32 = |what: &str, n: usize| -> u32 {
            u32::try_from(n)
                .unwrap_or_else(|_| panic!("{what} ({n}) exceeds the format's u32 limit"))
        };
        let num_qubits = count_u32("qubit count", ecc_set.num_qubits);
        let num_params = count_u32("parameter count", ecc_set.num_params);
        let index_section = index.as_ref().map(encode_index_section).unwrap_or_default();
        let mut body = Vec::new();
        let table = (format_version == FORMAT_VERSION_V2).then(|| {
            let mut classes = Vec::with_capacity(ecc_set.eccs.len());
            let mut payload = Vec::new();
            for (i, ecc) in ecc_set.eccs.iter().enumerate() {
                let start = payload.len();
                encode_ecc_class(&mut payload, ecc);
                classes.push(ClassEntry {
                    orig_class_index: count_u32("class index", i),
                    len: count_u32("class payload length", payload.len() - start),
                    digest: class_payload_digest(num_qubits, num_params, &payload[start..]),
                });
            }
            let table = ClassTable {
                shard_seq: 0,
                shard_count: 1,
                parent_num_eccs: 0,
                parent_format_version: 0,
                parent_num_xforms: 0,
                parent_checksum: 0,
                classes,
                xform_ids: Vec::new(),
                index_digest: if index_section.is_empty() {
                    0
                } else {
                    checksum64(&index_section)
                },
            };
            table.encode(&mut body);
            (table, payload)
        });
        let table_len = body.len();
        let ecc_len;
        match table {
            Some((_, payload)) => {
                ecc_len = payload.len() as u64;
                body.extend_from_slice(&payload);
            }
            None => {
                let payload = encode_ecc_payload(&ecc_set);
                ecc_len = payload.len() as u64;
                body.extend_from_slice(&payload);
            }
        }
        body.extend_from_slice(&index_section);
        let mut header = LibraryHeader {
            format_version,
            gate_set,
            max_gates: ecc_set
                .eccs
                .iter()
                .flat_map(|e| e.circuits())
                .map(|c| count_u32("circuit gate count", c.gate_count()))
                .max()
                .unwrap_or(0),
            num_qubits,
            num_params,
            num_eccs: count_u32("ECC count", ecc_set.eccs.len()),
            total_circuits: count_u32("total circuits", ecc_set.total_circuits()),
            total_instructions: count_u32(
                "total instructions",
                ecc_set
                    .eccs
                    .iter()
                    .flat_map(|e| e.circuits())
                    .map(Circuit::gate_count)
                    .sum::<usize>(),
            ),
            generator_version: GENERATOR_VERSION,
            ecc_len,
            index_len: index_section.len() as u64,
            checksum: 0,
        };
        // v1: checksum over header prefix + whole body. v2: header prefix +
        // class table only (the table's digests cover the rest).
        let covered = if format_version == FORMAT_VERSION_V2 {
            &body[..table_len]
        } else {
            &body[..]
        };
        header.checksum = artifact_checksum(&header.encode()[..HEADER_LEN - 8], covered);
        Library {
            header,
            ecc_set,
            index,
            body,
        }
    }

    /// The artifact header.
    pub fn header(&self) -> &LibraryHeader {
        &self.header
    }

    /// The ECC set.
    pub fn ecc_set(&self) -> &EccSet {
        &self.ecc_set
    }

    /// The prebuilt dispatch index, when the artifact carries one.
    pub fn index(&self) -> Option<&TransformationIndex> {
        self.index.as_ref()
    }

    /// Consumes the library, yielding the ECC set and the prebuilt index.
    pub fn into_parts(self) -> (EccSet, Option<TransformationIndex>) {
        (self.ecc_set, self.index)
    }

    /// Total size of the encoded artifact in bytes (header + body).
    pub fn byte_len(&self) -> usize {
        HEADER_LEN + self.body.len()
    }

    /// Serializes the library to artifact bytes (deterministic: the same
    /// library always encodes to the same bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_len());
        out.extend_from_slice(&self.header.encode());
        out.extend_from_slice(&self.body);
        out
    }

    /// Validates and decodes an artifact: header, checksum, then both
    /// sections.
    ///
    /// # Errors
    ///
    /// Any header, checksum, or body validation failure.
    pub fn from_bytes(bytes: &[u8]) -> Result<Library, LibraryError> {
        let reader = LibraryReader::new(bytes)?;
        reader.verify_checksum()?;
        let ecc_set = reader.decode_ecc_set()?;
        let index = reader.decode_index()?;
        Ok(Library {
            header: reader.header().clone(),
            ecc_set,
            index,
            body: reader.body.to_vec(),
        })
    }

    /// Writes the artifact to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors, with `path` included in the error message.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_bytes()).map_err(|e| path_io_error(path, e))
    }

    /// Reads and decodes an artifact from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (with `path` in the message) and every
    /// validation failure of [`Library::from_bytes`].
    pub fn load(path: impl AsRef<Path>) -> Result<Library, LibraryError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| path_io_error(path, e))?;
        Library::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quartz_ir::{Gate, Instruction, ParamExpr};

    fn rz(q: usize, expr: ParamExpr) -> Instruction {
        Instruction::new(Gate::Rz, vec![q], vec![expr])
    }

    fn sample_set() -> EccSet {
        let mut set = EccSet::new(2, 1);
        let mut hh = Circuit::new(2, 1);
        hh.push(Instruction::new(Gate::H, vec![0], vec![]));
        hh.push(Instruction::new(Gate::H, vec![0], vec![]));
        set.eccs.push(Ecc::new(vec![hh, Circuit::new(2, 1)]));
        let mut a = Circuit::new(2, 1);
        a.push(rz(1, ParamExpr::var(0, 1)));
        a.push(rz(1, ParamExpr::constant_pi4_with_params(2, 1)));
        let mut b = Circuit::new(2, 1);
        b.push(rz(
            1,
            ParamExpr::var(0, 1).add(&ParamExpr::constant_pi4_with_params(2, 1)),
        ));
        set.eccs.push(Ecc::new(vec![a, b]));
        set
    }

    #[test]
    fn bytes_round_trip_losslessly_with_and_without_index() {
        let set = sample_set();
        for with_index in [false, true] {
            let library = Library::new("Nam", set.clone(), with_index);
            let bytes = library.to_bytes();
            let back = Library::from_bytes(&bytes).unwrap();
            assert_eq!(back.ecc_set(), &set);
            assert_eq!(back.header(), library.header());
            assert_eq!(back.index().is_some(), with_index);
            if let Some(index) = back.index() {
                let fresh = TransformationIndex::new(transformations_from_ecc_set(&set, true));
                assert_eq!(index.len(), fresh.len());
                assert_eq!(index.transformations(), fresh.transformations());
                assert_eq!(index.anchor_buckets(), fresh.anchor_buckets());
            }
            // Encoding is deterministic.
            assert_eq!(bytes, back.to_bytes());
        }
    }

    #[test]
    fn header_records_shape_and_counts() {
        let library = Library::new("Nam", sample_set(), true);
        let h = library.header();
        assert_eq!(h.gate_set, "Nam");
        assert_eq!(h.format_version, FORMAT_VERSION);
        assert_eq!(h.generator_version, GENERATOR_VERSION);
        assert_eq!(h.max_gates, 2);
        assert_eq!(h.num_qubits, 2);
        assert_eq!(h.num_params, 1);
        assert_eq!(h.num_eccs, 2);
        assert_eq!(h.total_circuits, 4);
        assert_eq!(h.total_instructions, 5);
        assert!(h.has_index());
        assert!(h.ecc_len > 0 && h.index_len > 0);
    }

    #[test]
    fn corrupted_magic_and_version_are_rejected() {
        let bytes = Library::new("Nam", sample_set(), false).to_bytes();
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Library::from_bytes(&bad_magic),
            Err(LibraryError::NotALibrary)
        ));
        let mut bad_version = bytes.clone();
        bad_version[4] = 0xFF;
        assert!(matches!(
            Library::from_bytes(&bad_version),
            Err(LibraryError::UnsupportedVersion(_))
        ));
        let mut bad_header_len = bytes;
        bad_header_len[6] = 99;
        assert!(matches!(
            Library::from_bytes(&bad_header_len),
            Err(LibraryError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_files_are_rejected_at_every_length() {
        let bytes = Library::new("Nam", sample_set(), true).to_bytes();
        for len in 0..bytes.len() {
            assert!(
                Library::from_bytes(&bytes[..len]).is_err(),
                "a {len}-byte prefix of a {}-byte artifact must not decode",
                bytes.len()
            );
        }
        // Trailing garbage is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            Library::from_bytes(&padded),
            Err(LibraryError::Malformed(_))
        ));
        assert!(Library::from_bytes(&bytes).is_ok());
    }

    #[test]
    fn body_corruption_fails_the_checksum() {
        let mut bytes = Library::new("Nam", sample_set(), true).to_bytes();
        let flip = HEADER_LEN + 5;
        bytes[flip] ^= 0xFF;
        match Library::from_bytes(&bytes) {
            Err(LibraryError::ChecksumMismatch { expected, found }) => {
                assert_ne!(expected, found)
            }
            other => panic!("expected a checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn reader_validates_header_without_decoding_the_body() {
        let library = Library::new("Rigetti", sample_set(), true);
        let bytes = library.to_bytes();
        let reader = LibraryReader::new(&bytes).unwrap();
        assert_eq!(reader.header().gate_set, "Rigetti");
        assert_eq!(reader.ecc_bytes().len() as u64, reader.header().ecc_len);
        assert_eq!(
            reader.index_bytes().unwrap().len() as u64,
            reader.header().index_len
        );
        reader.verify_checksum().unwrap();
        assert_eq!(reader.decode_ecc_set().unwrap(), *library.ecc_set());
    }

    #[test]
    fn long_gate_set_names_are_truncated_not_fatal() {
        let library = Library::new("AVeryLongGateSetName", sample_set(), false);
        assert_eq!(library.header().gate_set, "AVeryLongGat");
        let back = Library::from_bytes(&library.to_bytes()).unwrap();
        assert_eq!(back.header().gate_set, "AVeryLongGat");
    }

    #[test]
    fn checksum_is_fnv1a64() {
        assert_eq!(checksum64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
