//! Circuit transformations extracted from ECC sets (paper §6).
//!
//! A transformation library *is* an ECC set viewed operationally: each class
//! with representative C₁ and members C₂..Cₓ yields the rewrite rules
//! C₁→Cᵢ and Cᵢ→C₁. This module hosts the [`Transformation`] pair type and
//! the extraction routine; it lives in `quartz-gen` (rather than the
//! optimizer crate) so that persisted library artifacts
//! ([`crate::library`]) can carry a ready-to-dispatch transformation list —
//! and its prebuilt index — without a dependency cycle.

use crate::ecc::EccSet;
use quartz_ir::Circuit;
use serde::{Deserialize, Serialize};

/// A circuit transformation (C_T, C_R): replace a subcircuit matching the
/// target pattern with the rewrite circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transformation {
    /// The target pattern C_T.
    pub target: Circuit,
    /// The rewrite circuit C_R.
    pub rewrite: Circuit,
}

impl Transformation {
    /// Change in gate count when the transformation is applied
    /// (negative means the circuit shrinks).
    pub fn gate_delta(&self) -> isize {
        self.rewrite.gate_count() as isize - self.target.gate_count() as isize
    }
}

/// Extracts the transformation list from an ECC set, as the optimizer does
/// (paper §6): for each class with representative C₁ and members C₂..Cₓ it
/// yields C₁→Cᵢ and Cᵢ→C₁ — 2(x−1) transformations per class.
///
/// Transformations whose target pattern is empty are dropped (an empty
/// pattern matches everywhere and only ever increases cost), and when
/// `prune_common_subcircuits` is set, pairs sharing a first or last gate are
/// dropped too (paper §5.2). Identical (target, rewrite) pairs — which arise
/// when ECC classes overlap — are emitted once, keeping the first
/// occurrence's position, so duplicated classes no longer multiply the
/// search's matching work.
pub fn transformations_from_ecc_set(
    set: &EccSet,
    prune_common_subcircuits: bool,
) -> Vec<Transformation> {
    transformations_with_provenance(set, prune_common_subcircuits)
        .into_iter()
        .map(|(xform, _)| xform)
        .collect()
}

/// [`transformations_from_ecc_set`] plus provenance: each transformation is
/// paired with the index of the class that *first* emitted it. Because the
/// cross-class dedup keeps the first occurrence, this is the only
/// well-defined class↔transformation attribution — the shard builder
/// ([`crate::shard_library`]) uses it to co-locate every class with the
/// transformations it contributed to the parent index.
pub fn transformations_with_provenance(
    set: &EccSet,
    prune_common_subcircuits: bool,
) -> Vec<(Transformation, usize)> {
    let mut out = Vec::new();
    let mut emitted: std::collections::HashSet<(Circuit, Circuit)> =
        std::collections::HashSet::new();
    let mut push_unique =
        |out: &mut Vec<(Transformation, usize)>, target: &Circuit, rewrite: &Circuit, class| {
            if emitted.insert((target.clone(), rewrite.clone())) {
                out.push((
                    Transformation {
                        target: target.clone(),
                        rewrite: rewrite.clone(),
                    },
                    class,
                ));
            }
        };
    for (class, ecc) in set.eccs.iter().enumerate() {
        let rep = ecc.representative().clone();
        for other in ecc.circuits().iter().skip(1) {
            if prune_common_subcircuits && shares_boundary_gate(&rep, other) {
                continue;
            }
            if !other.is_empty() {
                push_unique(&mut out, other, &rep, class);
            }
            if !rep.is_empty() {
                push_unique(&mut out, &rep, other, class);
            }
        }
    }
    out
}

fn shares_boundary_gate(a: &Circuit, b: &Circuit) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    a.instructions()[0] == b.instructions()[0] || a.instructions().last() == b.instructions().last()
}

/// Convenience constructor used by this crate's tests.
#[cfg(test)]
pub(crate) fn instruction(gate: quartz_ir::Gate, qubits: &[usize]) -> quartz_ir::Instruction {
    quartz_ir::Instruction::new(gate, qubits.to_vec(), vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecc::Ecc;
    use quartz_ir::{Gate, Instruction};

    fn h(q: usize) -> Instruction {
        instruction(Gate::H, &[q])
    }

    #[test]
    fn transformations_are_bidirectional() {
        let mut hh = Circuit::new(1, 0);
        hh.push(h(0));
        hh.push(h(0));
        let empty = Circuit::new(1, 0);
        let mut set = EccSet::new(1, 0);
        set.eccs.push(Ecc::new(vec![hh.clone(), empty.clone()]));
        let xforms = transformations_from_ecc_set(&set, false);
        // empty → HH is dropped (empty target), HH → empty is kept.
        assert_eq!(xforms.len(), 1);
        assert_eq!(xforms[0].target, hh);
        assert_eq!(xforms[0].rewrite, empty);
        assert_eq!(xforms[0].gate_delta(), -2);
    }

    #[test]
    fn non_empty_classes_give_two_directions() {
        let mut a = Circuit::new(2, 0);
        a.push(instruction(Gate::Cnot, &[0, 1]));
        a.push(instruction(Gate::Cnot, &[1, 0]));
        let mut b = Circuit::new(2, 0);
        b.push(instruction(Gate::Cnot, &[1, 0]));
        b.push(instruction(Gate::Cnot, &[0, 1]));
        let mut set = EccSet::new(2, 0);
        set.eccs.push(Ecc::new(vec![a, b]));
        let xforms = transformations_from_ecc_set(&set, false);
        assert_eq!(xforms.len(), 2);
    }

    #[test]
    fn overlapping_classes_do_not_duplicate_transformations() {
        // Two ECCs containing the same pair of circuits: the (target, rewrite)
        // pairs coincide and must be emitted once.
        let mut hh = Circuit::new(1, 0);
        hh.push(h(0));
        hh.push(h(0));
        let mut xx = Circuit::new(1, 0);
        xx.push(instruction(Gate::X, &[0]));
        xx.push(instruction(Gate::X, &[0]));
        let mut set = EccSet::new(1, 0);
        set.eccs.push(Ecc::new(vec![hh.clone(), xx.clone()]));
        set.eccs.push(Ecc::new(vec![hh.clone(), xx.clone()]));
        let xforms = transformations_from_ecc_set(&set, false);
        assert_eq!(
            xforms.len(),
            2,
            "duplicated ECC must not duplicate transformations"
        );
        // A distinct pair in a third class still comes through.
        let mut zz = Circuit::new(1, 0);
        zz.push(instruction(Gate::Z, &[0]));
        zz.push(instruction(Gate::Z, &[0]));
        set.eccs.push(Ecc::new(vec![hh.clone(), zz]));
        assert_eq!(transformations_from_ecc_set(&set, false).len(), 4);
    }

    #[test]
    fn common_boundary_pruning_drops_pairs() {
        let mut a = Circuit::new(1, 0);
        a.push(h(0));
        a.push(instruction(Gate::X, &[0]));
        let mut b = Circuit::new(1, 0);
        b.push(h(0));
        b.push(instruction(Gate::Z, &[0]));
        // Not actually equivalent, but that is irrelevant for this unit test
        // of the pruning predicate: they share the leading H.
        let mut set = EccSet::new(1, 0);
        set.eccs.push(Ecc::new(vec![a, b]));
        assert_eq!(transformations_from_ecc_set(&set, true).len(), 0);
        assert_eq!(transformations_from_ecc_set(&set, false).len(), 2);
    }
}
