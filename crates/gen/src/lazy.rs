//! Lazy, mmap-backed access to format-v2 library artifacts, and the
//! shard/merge machinery built on top of it (DESIGN.md §12).
//!
//! [`crate::LibraryReader`] validates v2 artifacts zero-copy but its
//! `decode_*` entry points still materialize whole sections.
//! [`LazyLibrary`] goes one step further: open validates only the header
//! and the class table (O(header + table) work and memory), and each ECC
//! class is decoded — and digest-verified — the first time it is touched.
//! A server that routes traffic for a handful of gate sets over paper-scale
//! artifacts therefore pays O(used classes), not O(library), in both
//! startup latency and resident memory.
//!
//! The same class table powers **sharding**: [`shard_library`] splits one
//! indexed artifact into `k` v2 shards along whole anchor buckets, each
//! carrying its slice of the parent's prebuilt index together with the
//! parent transformation ids, so [`assemble_index`] can rebuild a dispatch
//! index from any subset of shards — and exactly the parent's index when
//! all of them are present. [`merge_shards`] is the inverse: it reassembles
//! the parent artifact and proves byte-identity via the parent checksum
//! recorded in every shard.
//!
//! Integrity model (the lazy-decode safety argument, DESIGN.md §12.3): the
//! v2 artifact checksum covers the header prefix and the class table; the
//! table's per-class digests and index digest cover every remaining body
//! byte. Open verifies the former; every class/index access verifies the
//! latter before decoding. A flipped byte anywhere in the file is therefore
//! caught at open or at first touch of the section it lives in — never
//! silently decoded — and [`LazyLibrary::verify_all`] (used by
//! `quartz-lib verify-checksum --deep` and registry `get`) hashes every
//! section without decoding for the classes a lazy reader never touched.

use crate::ecc::{Ecc, EccSet};
use crate::index::TransformationIndex;
use crate::library::{
    artifact_checksum, checksum64, class_payload_digest, decode_class_payload,
    decode_index_section, encode_ecc_class, encode_index_section, path_io_error,
    verify_class_payload, verify_index_section, ClassEntry, ClassTable, Cursor, Library,
    LibraryError, LibraryHeader, FORMAT_VERSION_V2, GENERATOR_VERSION, HEADER_LEN,
};
use crate::xform::transformations_with_provenance;
use quartz_ir::Gate;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// The byte source behind a [`LazyLibrary`]: a positioned-read file "map"
/// (the vendored `mmap` shim, DESIGN.md §4) or an owned in-memory buffer,
/// so every existing byte-slice test path runs unchanged.
#[derive(Debug)]
enum MmapBody {
    Mapped { map: mmap::Mmap, path: PathBuf },
    Bytes(Vec<u8>),
}

impl MmapBody {
    fn len(&self) -> usize {
        match self {
            MmapBody::Mapped { map, .. } => map.len(),
            MmapBody::Bytes(bytes) => bytes.len(),
        }
    }

    /// Reads `range` (absolute file offsets), failing with a path-annotated
    /// [`LibraryError::Io`] when the source cannot serve it.
    fn read_range(&self, range: std::ops::Range<usize>) -> Result<Vec<u8>, LibraryError> {
        match self {
            MmapBody::Mapped { map, path } => map
                .read_range(range)
                .map_err(|e| LibraryError::Io(path_io_error(path, e))),
            MmapBody::Bytes(bytes) => {
                if range.end > bytes.len() || range.start > range.end {
                    return Err(LibraryError::Truncated {
                        context: "lazy byte range",
                    });
                }
                Ok(bytes[range].to_vec())
            }
        }
    }
}

/// A lazily-decoding handle over one library artifact.
///
/// * v2 artifacts: open reads and validates the header and class table
///   only; [`LazyLibrary::class`] decodes (and digest-verifies) a class on
///   first touch and caches the decoded form; [`LazyLibrary::index`] does
///   the same for the prebuilt index section.
/// * v1 artifacts: open falls back to the existing eager path
///   ([`Library::from_bytes`], full checksum verification and decode), so
///   every artifact ever published keeps loading through this one type.
///
/// All accessors are `&self` and thread-safe; concurrent first touches of
/// the same class decode at most twice and cache once.
#[derive(Debug)]
pub struct LazyLibrary {
    header: LibraryHeader,
    /// `None` for v1 artifacts (eagerly decoded at open).
    table: Option<ClassTable>,
    body: Option<MmapBody>,
    /// Absolute file offset where the ECC payload section starts.
    ecc_start: usize,
    /// Prefix sums of class payload lengths: class `i` occupies
    /// `ecc_start + class_offsets[i] .. ecc_start + class_offsets[i + 1]`.
    class_offsets: Vec<usize>,
    classes: Vec<OnceLock<Arc<Ecc>>>,
    index_cache: OnceLock<Option<Arc<TransformationIndex>>>,
    decoded: AtomicUsize,
    path: Option<PathBuf>,
}

impl LazyLibrary {
    /// Opens an artifact file through the mmap shim.
    ///
    /// For v2 this reads O(header + class table) bytes and verifies the v2
    /// checksum over exactly those; the payload and index sections stay on
    /// disk until touched. For v1 it reads and verifies the whole file
    /// eagerly.
    ///
    /// # Errors
    ///
    /// Any header, table, or checksum validation failure; I/O errors name
    /// `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<LazyLibrary, LibraryError> {
        let path = path.as_ref();
        let map = mmap::Mmap::open(path).map_err(|e| LibraryError::Io(path_io_error(path, e)))?;
        let body = MmapBody::Mapped {
            map,
            path: path.to_path_buf(),
        };
        LazyLibrary::from_body(body, Some(path.to_path_buf()))
    }

    /// Opens an artifact from an in-memory buffer (the byte-slice fallback;
    /// identical validation and laziness, no file behind it).
    ///
    /// # Errors
    ///
    /// Same as [`LazyLibrary::open`].
    pub fn from_bytes(bytes: Vec<u8>) -> Result<LazyLibrary, LibraryError> {
        LazyLibrary::from_body(MmapBody::Bytes(bytes), None)
    }

    fn from_body(body: MmapBody, path: Option<PathBuf>) -> Result<LazyLibrary, LibraryError> {
        let file_len = body.len();
        let head = body.read_range(0..file_len.min(HEADER_LEN))?;
        let header = LibraryHeader::decode(&head)?;
        if header.format_version != FORMAT_VERSION_V2 {
            // v1: the existing eager path, through the same handle type.
            let bytes = body.read_range(0..file_len)?;
            let library = Library::from_bytes(&bytes)?;
            let num_eccs = library.ecc_set().eccs.len();
            let (set, index) = library.into_parts();
            let classes: Vec<OnceLock<Arc<Ecc>>> = set
                .eccs
                .into_iter()
                .map(|ecc| {
                    let cell = OnceLock::new();
                    cell.set(Arc::new(ecc)).expect("fresh cell");
                    cell
                })
                .collect();
            let index_cache = OnceLock::new();
            index_cache
                .set(index.map(Arc::new))
                .expect("fresh index cell");
            return Ok(LazyLibrary {
                header,
                table: None,
                body: None,
                ecc_start: HEADER_LEN,
                class_offsets: Vec::new(),
                classes,
                index_cache,
                decoded: AtomicUsize::new(num_eccs),
                path,
            });
        }
        // v2: read and verify the class table, nothing else.
        let preamble_end = HEADER_LEN + 32;
        if file_len < preamble_end {
            return Err(LibraryError::Truncated {
                context: "class table",
            });
        }
        let preamble = body.read_range(HEADER_LEN..preamble_end)?;
        let xform_id_count =
            u32::from_le_bytes([preamble[12], preamble[13], preamble[14], preamble[15]]) as usize;
        let table_len = 32 + 16 * header.num_eccs as usize + 4 * xform_id_count + 8;
        if file_len < HEADER_LEN + table_len {
            return Err(LibraryError::Truncated {
                context: "class table",
            });
        }
        let table_bytes = body.read_range(HEADER_LEN..HEADER_LEN + table_len)?;
        let mut cur = Cursor::new(&table_bytes);
        let table = ClassTable::decode(&mut cur, &header)?;
        if !cur.finished() {
            return Err(LibraryError::Malformed(
                "class table shorter than its preamble claims".to_string(),
            ));
        }
        let found = artifact_checksum(&head[..HEADER_LEN - 8], &table_bytes);
        if found != header.checksum {
            return Err(LibraryError::ChecksumMismatch {
                expected: header.checksum,
                found,
            });
        }
        let expected_len =
            HEADER_LEN + table_len + header.ecc_len as usize + header.index_len as usize;
        if file_len < expected_len {
            return Err(LibraryError::Truncated { context: "body" });
        }
        if file_len > expected_len {
            return Err(LibraryError::Malformed(format!(
                "{} trailing bytes after the last section",
                file_len - expected_len
            )));
        }
        let mut class_offsets = Vec::with_capacity(table.classes.len() + 1);
        let mut offset = 0usize;
        class_offsets.push(0);
        for entry in &table.classes {
            offset += entry.len as usize;
            class_offsets.push(offset);
        }
        let classes = (0..table.classes.len()).map(|_| OnceLock::new()).collect();
        Ok(LazyLibrary {
            header,
            table: Some(table),
            body: Some(body),
            ecc_start: HEADER_LEN + table_len,
            class_offsets,
            classes,
            index_cache: OnceLock::new(),
            decoded: AtomicUsize::new(0),
            path,
        })
    }

    /// The artifact header.
    pub fn header(&self) -> &LibraryHeader {
        &self.header
    }

    /// The class table (v2 artifacts only).
    pub fn class_table(&self) -> Option<&ClassTable> {
        self.table.as_ref()
    }

    /// The path the artifact was opened from, when it came from a file.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Number of equivalence classes in the artifact.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of *distinct* classes decoded so far — the O(used classes)
    /// counter surfaced by the `startup/v2_lazy` bench suite. `num_classes`
    /// immediately after a v1 open (eager), 0 after a v2 open.
    pub fn decoded_classes(&self) -> usize {
        self.decoded.load(Ordering::Relaxed)
    }

    /// Returns class `i`, decoding (and digest-verifying) it on first
    /// touch.
    ///
    /// # Errors
    ///
    /// [`LibraryError::ClassDigestMismatch`] when the payload bytes do not
    /// hash to the table's digest, plus any decode or I/O failure.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn class(&self, i: usize) -> Result<Arc<Ecc>, LibraryError> {
        let cell = &self.classes[i];
        if let Some(ecc) = cell.get() {
            return Ok(Arc::clone(ecc));
        }
        let table = self
            .table
            .as_ref()
            .expect("v1 classes are pre-decoded at open");
        let body = self.body.as_ref().expect("v2 handles keep their body");
        let start = self.ecc_start + self.class_offsets[i];
        let end = self.ecc_start + self.class_offsets[i + 1];
        let payload = body.read_range(start..end)?;
        verify_class_payload(&self.header, i, &table.classes[i], &payload)?;
        let ecc = Arc::new(decode_class_payload(i, &payload)?);
        if cell.set(Arc::clone(&ecc)).is_ok() {
            self.decoded.fetch_add(1, Ordering::Relaxed);
            Ok(ecc)
        } else {
            // A racing thread won; use its copy so every caller shares one.
            Ok(Arc::clone(cell.get().expect("cell was just set")))
        }
    }

    /// The prebuilt dispatch index, decoded (and digest-verified) on first
    /// touch; `None` when the artifact carries no index section.
    ///
    /// # Errors
    ///
    /// [`LibraryError::IndexDigestMismatch`] when the section bytes do not
    /// hash to the table's digest, plus any decode or I/O failure.
    pub fn index(&self) -> Result<Option<Arc<TransformationIndex>>, LibraryError> {
        if let Some(cached) = self.index_cache.get() {
            return Ok(cached.clone());
        }
        let decoded = if self.header.has_index() {
            let table = self.table.as_ref().expect("v1 indexes are pre-decoded");
            let body = self.body.as_ref().expect("v2 handles keep their body");
            let start = self.ecc_start + self.header.ecc_len as usize;
            let bytes = body.read_range(start..start + self.header.index_len as usize)?;
            verify_index_section(table, &bytes)?;
            Some(Arc::new(decode_index_section(&bytes)?))
        } else {
            None
        };
        Ok(self.index_cache.get_or_init(|| decoded).clone())
    }

    /// Decodes every class into an owned [`EccSet`] (the eager escape
    /// hatch: backward-compat tests, merge, `quartz-lib unpack`).
    ///
    /// # Errors
    ///
    /// The first class that fails its digest or decode.
    pub fn ecc_set(&self) -> Result<EccSet, LibraryError> {
        let mut set = EccSet::new(
            self.header.num_qubits as usize,
            self.header.num_params as usize,
        );
        for i in 0..self.num_classes() {
            set.eccs.push((*self.class(i)?).clone());
        }
        Ok(set)
    }

    /// Verifies every byte of the artifact *without* decoding anything: each
    /// class payload and the index section are re-hashed against the
    /// table's digests. This is how a corrupted class a lazy reader never
    /// touched is still caught — `quartz-lib verify-checksum --deep` and
    /// registry `get` both call it.
    ///
    /// On v1 handles this is a no-op: the whole-body checksum was already
    /// verified at open.
    ///
    /// # Errors
    ///
    /// The first digest mismatch or I/O failure found.
    pub fn verify_all(&self) -> Result<(), LibraryError> {
        let Some(table) = self.table.as_ref() else {
            return Ok(());
        };
        let body = self.body.as_ref().expect("v2 handles keep their body");
        for (i, entry) in table.classes.iter().enumerate() {
            let start = self.ecc_start + self.class_offsets[i];
            let end = self.ecc_start + self.class_offsets[i + 1];
            let payload = body.read_range(start..end)?;
            verify_class_payload(&self.header, i, entry, &payload)?;
        }
        if self.header.has_index() {
            let start = self.ecc_start + self.header.ecc_len as usize;
            let bytes = body.read_range(start..start + self.header.index_len as usize)?;
            verify_index_section(table, &bytes)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Sharding: split one indexed artifact along whole anchor buckets
// ---------------------------------------------------------------------------

/// Splits an indexed library into `shard_count` v2 shard artifacts along
/// whole anchor buckets: shard `j` owns every transformation anchored on a
/// gate `g` with `g.index() % shard_count == j`, carries that slice of the
/// parent's prebuilt index (with the parent transformation ids recorded in
/// its class table), and holds every class whose first-emitted
/// transformation it owns (classes that emitted none go to shard 0). Every
/// class and every transformation lands in exactly one shard.
///
/// Splitting along whole buckets is what makes partial loading sound: a
/// dispatch index assembled from a subset of shards ([`assemble_index`]) has
/// either *all* of a gate's anchored transformations or none of them, so a
/// server routing by anchor gate never sees a half-populated bucket.
///
/// Returns the encoded shard artifacts, `shard_seq` order.
///
/// # Errors
///
/// Fails when the parent has no prebuilt index (shards carry index slices,
/// not re-extractions — the cross-class transformation dedup makes
/// re-extraction from a shard's own classes produce *different* rules), or
/// when `shard_count` is 0 or exceeds the number of anchor buckets.
pub fn shard_library(parent: &Library, shard_count: usize) -> Result<Vec<Vec<u8>>, LibraryError> {
    if shard_count == 0 || shard_count > Gate::COUNT {
        return Err(LibraryError::Malformed(format!(
            "shard count must be between 1 and {} (one per anchor bucket), got {shard_count}",
            Gate::COUNT
        )));
    }
    let Some(index) = parent.index() else {
        return Err(LibraryError::Malformed(
            "sharding requires an artifact with a prebuilt index section".to_string(),
        ));
    };
    let set = parent.ecc_set();
    let header = parent.header();

    // Which shard owns each transformation: via its anchor gate's bucket.
    let mut shard_of_xform = vec![0usize; index.len()];
    for (gate_idx, bucket) in index.anchor_buckets().iter().enumerate() {
        for &id in bucket {
            shard_of_xform[id] = gate_idx % shard_count;
        }
    }

    // Which shard owns each class: the shard of its first-emitted
    // transformation. The provenance walk must reproduce the parent's
    // transformation list exactly (same extraction, same dedup order).
    let with_prov = transformations_with_provenance(set, true);
    if with_prov.len() != index.len()
        || with_prov
            .iter()
            .zip(index.transformations())
            .any(|((a, _), b)| a != b)
    {
        return Err(LibraryError::Malformed(
            "prebuilt index does not match this artifact's extracted transformations \
             (stale index?)"
                .to_string(),
        ));
    }
    let mut shard_of_class = vec![0usize; set.eccs.len()];
    let mut class_seen = vec![false; set.eccs.len()];
    for (id, (_, class)) in with_prov.iter().enumerate() {
        if !class_seen[*class] {
            class_seen[*class] = true;
            shard_of_class[*class] = shard_of_xform[id];
        }
    }

    let mut shards = Vec::with_capacity(shard_count);
    for j in 0..shard_count {
        // This shard's transformations, ascending parent id.
        let orig_ids: Vec<usize> = (0..index.len())
            .filter(|&id| shard_of_xform[id] == j)
            .collect();
        let local_of: HashMap<usize, usize> =
            orig_ids.iter().enumerate().map(|(l, &o)| (o, l)).collect();
        let local_xforms: Vec<_> = orig_ids
            .iter()
            .map(|&o| index.transformations()[o].clone())
            .collect();
        let histograms = local_xforms
            .iter()
            .map(|x| *x.target.gate_histogram())
            .collect();
        let mut local_buckets = vec![Vec::new(); Gate::COUNT];
        for (gate_idx, bucket) in index.anchor_buckets().iter().enumerate() {
            if gate_idx % shard_count == j {
                local_buckets[gate_idx] = bucket.iter().map(|id| local_of[id]).collect();
            }
        }
        let local_index = TransformationIndex::from_parts(local_xforms, histograms, local_buckets)
            .map_err(LibraryError::Malformed)?;
        let index_section = encode_index_section(&local_index);

        // This shard's classes, ascending parent class index.
        let mut classes = Vec::new();
        let mut payload = Vec::new();
        let mut total_circuits = 0u32;
        let mut total_instructions = 0u32;
        for (c, ecc) in set.eccs.iter().enumerate() {
            if shard_of_class[c] != j {
                continue;
            }
            let start = payload.len();
            encode_ecc_class(&mut payload, ecc);
            classes.push(ClassEntry {
                orig_class_index: c as u32,
                len: (payload.len() - start) as u32,
                digest: class_payload_digest(
                    header.num_qubits,
                    header.num_params,
                    &payload[start..],
                ),
            });
            total_circuits += ecc.len() as u32;
            total_instructions += ecc
                .circuits()
                .iter()
                .map(|circ| circ.gate_count() as u32)
                .sum::<u32>();
        }

        let table = ClassTable {
            shard_seq: j as u32,
            shard_count: shard_count as u32,
            parent_num_eccs: header.num_eccs,
            parent_format_version: u32::from(header.format_version),
            parent_num_xforms: index.len() as u32,
            parent_checksum: header.checksum,
            classes,
            xform_ids: orig_ids.iter().map(|&o| o as u32).collect(),
            index_digest: checksum64(&index_section),
        };
        let mut shard_header = LibraryHeader {
            format_version: FORMAT_VERSION_V2,
            gate_set: header.gate_set.clone(),
            // (n, q, m) are the parent's: they describe the generation run,
            // not this file's contents, and keeping them uniform across a
            // group is what makes registry keys shard-agnostic.
            max_gates: header.max_gates,
            num_qubits: header.num_qubits,
            num_params: header.num_params,
            num_eccs: table.classes.len() as u32,
            total_circuits,
            total_instructions,
            generator_version: GENERATOR_VERSION,
            ecc_len: payload.len() as u64,
            index_len: index_section.len() as u64,
            checksum: 0,
        };
        let mut table_bytes = Vec::with_capacity(table.encoded_len());
        table.encode(&mut table_bytes);
        shard_header.checksum =
            artifact_checksum(&shard_header.encode()[..HEADER_LEN - 8], &table_bytes);
        let mut bytes = Vec::with_capacity(
            HEADER_LEN + table_bytes.len() + payload.len() + index_section.len(),
        );
        bytes.extend_from_slice(&shard_header.encode());
        bytes.extend_from_slice(&table_bytes);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&index_section);
        shards.push(bytes);
    }
    Ok(shards)
}

/// Reassembles the parent artifact from a complete shard group and proves
/// the reassembly: the merged artifact's checksum must equal the
/// `parent_checksum` every shard recorded, which (since encoding is
/// deterministic) makes the output byte-identical to the original.
///
/// # Errors
///
/// Fails when the shards are not one complete, mutually-consistent group
/// (mixed parents, missing/duplicate sequence numbers), fail their own
/// integrity checks, or do not reproduce the recorded parent checksum.
pub fn merge_shards(shards: &[Vec<u8>]) -> Result<Library, LibraryError> {
    if shards.is_empty() {
        return Err(LibraryError::Malformed("no shards to merge".to_string()));
    }
    let mut group: Vec<(LibraryHeader, ClassTable, EccSet)> = Vec::with_capacity(shards.len());
    for bytes in shards {
        let reader = crate::library::LibraryReader::new(bytes)?;
        reader.verify_checksum()?;
        // A shard records its parent's checksum; a group of one (is_shard()
        // false) is still a valid, mergeable group.
        let table = reader
            .class_table()
            .filter(|t| t.is_shard() || t.parent_checksum != 0)
            .ok_or_else(|| {
                LibraryError::Malformed("merge input is not a shard artifact".to_string())
            })?
            .clone();
        let set = reader.decode_ecc_set()?;
        group.push((reader.header().clone(), table, set));
    }
    let first_header = group[0].0.clone();
    let first_table = group[0].1.clone();
    let shard_count = first_table.shard_count as usize;
    if group.len() != shard_count {
        return Err(LibraryError::Malformed(format!(
            "shard group of {shard_count} merged from {} artifacts",
            group.len()
        )));
    }
    let mut seen_seq = vec![false; shard_count];
    for (header, table, _) in &group {
        if table.shard_count != first_table.shard_count
            || table.parent_checksum != first_table.parent_checksum
            || table.parent_num_eccs != first_table.parent_num_eccs
            || table.parent_format_version != first_table.parent_format_version
            || table.parent_num_xforms != first_table.parent_num_xforms
            || header.gate_set != first_header.gate_set
            || header.num_qubits != first_header.num_qubits
            || header.num_params != first_header.num_params
            || header.has_index() != first_header.has_index()
        {
            return Err(LibraryError::Malformed(
                "shards come from different parent artifacts".to_string(),
            ));
        }
        let seq = table.shard_seq as usize;
        if seen_seq[seq] {
            return Err(LibraryError::Malformed(format!(
                "duplicate shard sequence {seq}"
            )));
        }
        seen_seq[seq] = true;
    }
    let parent_num_eccs = first_table.parent_num_eccs as usize;
    let mut slots: Vec<Option<Ecc>> = vec![None; parent_num_eccs];
    for (_, table, set) in group {
        for (entry, ecc) in table.classes.iter().zip(set.eccs) {
            let slot = slots
                .get_mut(entry.orig_class_index as usize)
                .ok_or_else(|| {
                    LibraryError::Malformed(format!(
                        "shard class points at parent slot {} of {parent_num_eccs}",
                        entry.orig_class_index
                    ))
                })?;
            if slot.is_some() {
                return Err(LibraryError::Malformed(format!(
                    "two shards both carry parent class {}",
                    entry.orig_class_index
                )));
            }
            *slot = Some(ecc);
        }
    }
    let mut merged = EccSet::new(
        first_header.num_qubits as usize,
        first_header.num_params as usize,
    );
    for (i, slot) in slots.into_iter().enumerate() {
        merged.eccs.push(slot.ok_or_else(|| {
            LibraryError::Malformed(format!("no shard carries parent class {i}"))
        })?);
    }
    let parent_version = u16::try_from(first_table.parent_format_version)
        .map_err(|_| LibraryError::Malformed("parent format version out of range".to_string()))?;
    let library = Library::with_format(
        first_header.gate_set.clone(),
        merged,
        first_header.has_index(),
        parent_version,
    );
    if library.header().checksum != first_table.parent_checksum {
        return Err(LibraryError::Malformed(format!(
            "merged artifact checksum {:#018x} does not reproduce the parent checksum {:#018x} \
             recorded in the shards",
            library.header().checksum,
            first_table.parent_checksum
        )));
    }
    Ok(library)
}

/// Builds a dispatch index from any subset of one shard group, by stitching
/// the shards' index slices back together on their recorded parent
/// transformation ids. With every shard of the group present the result is
/// exactly the parent's prebuilt index (same transformations in the same
/// order, same anchor assignment); with a subset, it is the parent's index
/// restricted to the anchor buckets those shards own.
///
/// # Errors
///
/// Fails when the shards do not belong to one group, a shard has no index
/// slice, two shards claim the same transformation, or the stitched parts
/// fail [`TransformationIndex::from_parts`] validation.
pub fn assemble_index(shards: &[&LazyLibrary]) -> Result<TransformationIndex, LibraryError> {
    if shards.is_empty() {
        return Err(LibraryError::Malformed(
            "no shards to assemble an index from".to_string(),
        ));
    }
    let first = shards[0].class_table().ok_or_else(|| {
        LibraryError::Malformed("index assembly needs v2 shard artifacts".to_string())
    })?;
    // orig id → transformation, plus per-gate buckets in parent id order.
    let mut by_orig: HashMap<u32, crate::xform::Transformation> = HashMap::new();
    let mut buckets_orig: Vec<Vec<u32>> = vec![Vec::new(); Gate::COUNT];
    for shard in shards {
        let table = shard.class_table().ok_or_else(|| {
            LibraryError::Malformed("index assembly needs v2 shard artifacts".to_string())
        })?;
        if table.parent_checksum != first.parent_checksum || table.shard_count != first.shard_count
        {
            return Err(LibraryError::Malformed(
                "shards come from different parent artifacts".to_string(),
            ));
        }
        let index = shard
            .index()?
            .ok_or_else(|| LibraryError::Malformed("shard carries no index slice".to_string()))?;
        if table.xform_ids.len() != index.len() {
            return Err(LibraryError::Malformed(format!(
                "shard records {} parent transformation ids for {} transformations",
                table.xform_ids.len(),
                index.len()
            )));
        }
        for (local, xform) in index.transformations().iter().enumerate() {
            let orig = table.xform_ids[local];
            if by_orig.insert(orig, xform.clone()).is_some() {
                return Err(LibraryError::Malformed(format!(
                    "two shards both carry parent transformation {orig}"
                )));
            }
        }
        for (gate_idx, bucket) in index.anchor_buckets().iter().enumerate() {
            for &local in bucket {
                buckets_orig[gate_idx].push(table.xform_ids[local]);
            }
        }
    }
    let mut orig_ids: Vec<u32> = by_orig.keys().copied().collect();
    orig_ids.sort_unstable();
    let dense_of: HashMap<u32, usize> = orig_ids.iter().enumerate().map(|(d, &o)| (o, d)).collect();
    let transformations: Vec<_> = orig_ids
        .iter()
        .map(|o| by_orig.remove(o).expect("collected above"))
        .collect();
    let histograms = transformations
        .iter()
        .map(|x| *x.target.gate_histogram())
        .collect();
    let buckets = buckets_orig
        .into_iter()
        .map(|bucket| bucket.into_iter().map(|o| dense_of[&o]).collect())
        .collect();
    TransformationIndex::from_parts(transformations, histograms, buckets)
        .map_err(LibraryError::Malformed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecc::Ecc;
    use quartz_ir::{Circuit, Gate, Instruction, ParamExpr};

    fn rz(q: usize, expr: ParamExpr) -> Instruction {
        Instruction::new(Gate::Rz, vec![q], vec![expr])
    }

    fn sample_set() -> EccSet {
        let mut set = EccSet::new(2, 1);
        let mut hh = Circuit::new(2, 1);
        hh.push(Instruction::new(Gate::H, vec![0], vec![]));
        hh.push(Instruction::new(Gate::H, vec![0], vec![]));
        set.eccs.push(Ecc::new(vec![hh, Circuit::new(2, 1)]));
        let mut a = Circuit::new(2, 1);
        a.push(rz(1, ParamExpr::var(0, 1)));
        a.push(rz(1, ParamExpr::constant_pi4_with_params(2, 1)));
        let mut b = Circuit::new(2, 1);
        b.push(rz(
            1,
            ParamExpr::var(0, 1).add(&ParamExpr::constant_pi4_with_params(2, 1)),
        ));
        set.eccs.push(Ecc::new(vec![a, b]));
        let mut xx = Circuit::new(2, 1);
        xx.push(Instruction::new(Gate::X, vec![1], vec![]));
        xx.push(Instruction::new(Gate::X, vec![1], vec![]));
        set.eccs.push(Ecc::new(vec![xx, Circuit::new(2, 1)]));
        set
    }

    #[test]
    fn v2_round_trips_and_lazy_decode_counts_used_classes() {
        let set = sample_set();
        let library = Library::with_format("Nam", set.clone(), true, FORMAT_VERSION_V2);
        let bytes = library.to_bytes();

        // Eager v2 decode matches the source set.
        let eager = Library::from_bytes(&bytes).unwrap();
        assert_eq!(eager.ecc_set(), &set);
        assert_eq!(eager.to_bytes(), bytes);

        // Lazy decode touches only what is asked for.
        let lazy = LazyLibrary::from_bytes(bytes).unwrap();
        assert_eq!(lazy.num_classes(), set.eccs.len());
        assert_eq!(lazy.decoded_classes(), 0);
        let first = lazy.class(0).unwrap();
        assert_eq!(&*first, &set.eccs[0]);
        assert_eq!(lazy.decoded_classes(), 1);
        lazy.class(0).unwrap();
        assert_eq!(lazy.decoded_classes(), 1, "second touch must not re-decode");
        assert_eq!(&lazy.ecc_set().unwrap(), &set);
        assert_eq!(lazy.decoded_classes(), set.eccs.len());
        let index = lazy.index().unwrap().unwrap();
        assert_eq!(index.len(), library.index().unwrap().len());
        lazy.verify_all().unwrap();
    }

    #[test]
    fn v1_artifacts_load_through_the_lazy_handle_eagerly() {
        let set = sample_set();
        let library = Library::new("Ibm", set.clone(), true);
        let lazy = LazyLibrary::from_bytes(library.to_bytes()).unwrap();
        assert_eq!(lazy.decoded_classes(), set.eccs.len());
        assert_eq!(&lazy.ecc_set().unwrap(), &set);
        assert!(lazy.index().unwrap().is_some());
        lazy.verify_all().unwrap();
    }

    #[test]
    fn shard_merge_round_trips_byte_identically() {
        let set = sample_set();
        for parent_version in [crate::library::FORMAT_VERSION, FORMAT_VERSION_V2] {
            let parent = Library::with_format("Nam", set.clone(), true, parent_version);
            for shard_count in [1usize, 2, 3] {
                let shards = shard_library(&parent, shard_count).unwrap();
                assert_eq!(shards.len(), shard_count);
                let merged = merge_shards(&shards).unwrap();
                assert_eq!(merged.to_bytes(), parent.to_bytes());
            }
        }
    }

    #[test]
    fn assembled_index_from_all_shards_equals_the_parent_index() {
        let set = sample_set();
        let parent = Library::new("Nam", set, true);
        let shards = shard_library(&parent, 3).unwrap();
        let lazies: Vec<LazyLibrary> = shards
            .into_iter()
            .map(|b| LazyLibrary::from_bytes(b).unwrap())
            .collect();
        let refs: Vec<&LazyLibrary> = lazies.iter().collect();
        let assembled = assemble_index(&refs).unwrap();
        let parent_index = parent.index().unwrap();
        assert_eq!(assembled.len(), parent_index.len());
        assert_eq!(assembled.transformations(), parent_index.transformations());
        assert_eq!(assembled.anchor_buckets(), parent_index.anchor_buckets());

        // A subset assembles the restriction: whole buckets, never split.
        let partial = assemble_index(&refs[..1]).unwrap();
        assert!(partial.len() <= parent_index.len());
        for (gate_idx, bucket) in partial.anchor_buckets().iter().enumerate() {
            let parent_bucket = &parent_index.anchor_buckets()[gate_idx];
            assert!(bucket.is_empty() || bucket.len() == parent_bucket.len());
        }
    }

    #[test]
    fn sharding_without_an_index_is_rejected() {
        let parent = Library::new("Nam", sample_set(), false);
        assert!(matches!(
            shard_library(&parent, 2),
            Err(LibraryError::Malformed(_))
        ));
    }
}
