//! `quartz-lib` — pack, inspect and verify persisted transformation-library
//! artifacts (the `QTZL` format of DESIGN.md §7).
//!
//! ```text
//! quartz-lib generate --gate-set nam|ibm|rigetti --n N --q Q [--m M]
//!                     [--no-index] --out FILE
//!     Run RepGen + pruning and pack the result (with its prebuilt
//!     dispatch index unless --no-index) as a binary artifact.
//!
//! quartz-lib pack --in SET.json --out SET.qtzl [--gate-set NAME] [--no-index]
//!     Convert an ECC-set JSON file to a binary artifact.
//!
//! quartz-lib unpack --in SET.qtzl --out SET.json
//!     Convert a binary artifact back to interchange JSON.
//!
//! quartz-lib inspect FILE
//!     Dump the header and payload statistics of an artifact.
//!
//! quartz-lib verify-checksum FILE [--deep]
//!     Validate the header, artifact checksum, and generator version. With
//!     --deep, additionally decode the payload, re-pack it with the current
//!     generator pipeline, and require byte-identical output (catches a
//!     stale prebuilt index or a stale encoder).
//!
//! quartz-lib audit FILE [--json] [--no-cache] [--write-stamp]
//!                  [--expect-full-cache] [--threads N]
//!     Run the static analyzer (DESIGN.md §11) over an artifact: re-verify
//!     every equivalence class semantically (parallel, with the
//!     FILE.audit sidecar as verified-cache unless --no-cache) and apply
//!     the structural lints. Errors exit 1, warnings don't. --write-stamp
//!     records a clean audit in the sidecar; --expect-full-cache fails
//!     unless every class was served from the cache (CI uses it to prove
//!     the sidecar is live); --json prints the machine-readable report.
//!
//! quartz-lib mutate --in FILE --out FILE
//!     Corrupt one transformation semantically — replace a single
//!     instruction's gate in one class member — and re-pack with a *valid*
//!     checksum. The output is indistinguishable from a sound artifact to
//!     every integrity check and must be caught by `audit` alone (the CI
//!     seeded-mutation check greps the printed location out of the audit
//!     report).
//!
//! quartz-lib repack --in FILE --out FILE [--format 1|2]
//!     Re-encode an artifact in another format version (default: v2, the
//!     lazy-loadable class-table format of DESIGN.md §12). Shards cannot be
//!     repacked — merge them first.
//!
//! quartz-lib shard --in FILE --count K --out-prefix PREFIX
//!     Split a whole artifact into K shard artifacts
//!     (PREFIX.shard0.qtzl … PREFIX.shard{K-1}.qtzl), each owning whole
//!     anchor buckets of the parent's prebuilt index. Prints the written
//!     paths on stdout.
//!
//! quartz-lib merge --out FILE SHARD...
//!     Reassemble a complete shard group into the parent artifact and
//!     verify the result against the parent checksum recorded in the
//!     shards — the output is byte-identical to the original.
//!
//! quartz-lib registry add --root DIR FILE...
//!     Verify and publish one whole artifact (or one complete shard group)
//!     into the content-addressed registry at DIR, keyed by
//!     (gate set, n, q, m, generator version). Audit sidecars next to the
//!     inputs are published too.
//!
//! quartz-lib registry get --root DIR --gate-set NAME --n N --q Q [--m M]
//!                         [--generator-version V]
//!     Resolve a key to its verified blob paths (printed on stdout, one
//!     per line, shard-sequence order). Every blob is re-verified —
//!     header, checksum, and all v2 digests — before it is reported.
//!
//! quartz-lib registry list --root DIR
//!     List every published key with its blob layout.
//!
//! quartz-lib registry gc --root DIR
//!     Remove unreferenced blobs and leftover staging files.
//! ```
//!
//! Exits 0 on success, 1 on any validation or I/O failure, 2 on a usage
//! error.

use quartz_gen::{
    merge_shards, prune, shard_library, AuditConfig, AuditStamp, Auditor, Ecc, EccSet, GenConfig,
    Generator, Library, LibraryReader, Registry, RegistryKey, FORMAT_VERSION, FORMAT_VERSION_V2,
    GENERATOR_VERSION,
};
use quartz_ir::{Circuit, GateSet, Instruction, ALL_GATES};
use quartz_verify::Verifier;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "generate" => generate(rest),
        "pack" => pack(rest),
        "unpack" => unpack(rest),
        "inspect" => inspect(rest),
        "verify-checksum" => verify_checksum(rest),
        "audit" => audit(rest),
        "mutate" => mutate(rest),
        "repack" => repack(rest),
        "shard" => shard(rest),
        "merge" => merge(rest),
        "registry" => registry_command(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("quartz-lib: unknown command {other:?}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(Failure::Usage(msg)) => {
            eprintln!("quartz-lib {command}: {msg}\n{USAGE}");
            ExitCode::from(2)
        }
        Err(Failure::Runtime(msg)) => {
            eprintln!("quartz-lib {command}: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  quartz-lib generate --gate-set nam|ibm|rigetti --n N --q Q [--m M] [--no-index] --out FILE
  quartz-lib pack --in SET.json --out SET.qtzl [--gate-set NAME] [--no-index]
  quartz-lib unpack --in SET.qtzl --out SET.json
  quartz-lib inspect FILE
  quartz-lib verify-checksum FILE [--deep]
  quartz-lib audit FILE [--json] [--no-cache] [--write-stamp] [--expect-full-cache] [--threads N]
  quartz-lib mutate --in FILE --out FILE
  quartz-lib repack --in FILE --out FILE [--format 1|2]
  quartz-lib shard --in FILE --count K --out-prefix PREFIX
  quartz-lib merge --out FILE SHARD...
  quartz-lib registry add --root DIR FILE...
  quartz-lib registry get --root DIR --gate-set NAME --n N --q Q [--m M] [--generator-version V]
  quartz-lib registry list --root DIR
  quartz-lib registry gc --root DIR";

enum Failure {
    Usage(String),
    Runtime(String),
}

fn usage(msg: impl Into<String>) -> Failure {
    Failure::Usage(msg.into())
}

fn runtime(msg: impl std::fmt::Display) -> Failure {
    Failure::Runtime(msg.to_string())
}

/// Minimal `--flag value` / `--switch` / positional argument scanner.
struct Args<'a> {
    args: &'a [String],
    used: Vec<bool>,
}

impl<'a> Args<'a> {
    fn new(args: &'a [String]) -> Self {
        Args {
            args,
            used: vec![false; args.len()],
        }
    }

    fn value_of(&mut self, flag: &str) -> Result<Option<&'a str>, Failure> {
        for i in 0..self.args.len() {
            if self.args[i] == flag && !self.used[i] {
                let value = self
                    .args
                    .get(i + 1)
                    .ok_or_else(|| usage(format!("{flag} needs a value")))?;
                self.used[i] = true;
                self.used[i + 1] = true;
                return Ok(Some(value));
            }
        }
        Ok(None)
    }

    fn required(&mut self, flag: &str) -> Result<&'a str, Failure> {
        self.value_of(flag)?
            .ok_or_else(|| usage(format!("missing required {flag}")))
    }

    fn switch(&mut self, flag: &str) -> bool {
        for i in 0..self.args.len() {
            if self.args[i] == flag && !self.used[i] {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    fn positional(&mut self) -> Option<&'a str> {
        for i in 0..self.args.len() {
            if !self.used[i] && !self.args[i].starts_with("--") {
                self.used[i] = true;
                return Some(&self.args[i]);
            }
        }
        None
    }

    fn finish(self) -> Result<(), Failure> {
        match self.used.iter().position(|&u| !u) {
            Some(i) => Err(usage(format!("unexpected argument {:?}", self.args[i]))),
            None => Ok(()),
        }
    }
}

fn parse_number(what: &str, value: &str) -> Result<usize, Failure> {
    value.parse::<usize>().map_err(|_| {
        usage(format!(
            "{what} must be a non-negative integer, got {value:?}"
        ))
    })
}

fn gate_set_by_name(name: &str) -> Result<GateSet, Failure> {
    match name.to_ascii_lowercase().as_str() {
        "nam" => Ok(GateSet::nam()),
        "ibm" => Ok(GateSet::ibm()),
        "rigetti" => Ok(GateSet::rigetti()),
        "clifford_t" | "cliffordt" => Ok(GateSet::clifford_t()),
        other => Err(usage(format!(
            "unknown gate set {other:?} (expected nam, ibm, rigetti, or clifford_t)"
        ))),
    }
}

fn default_params(gate_set: &GateSet) -> usize {
    // The paper's §7.1 parameter counts per gate set.
    if gate_set.name() == "IBM" {
        4
    } else {
        2
    }
}

fn generate(args: &[String]) -> Result<(), Failure> {
    let mut args = Args::new(args);
    let gate_set = gate_set_by_name(args.required("--gate-set")?)?;
    let n = parse_number("--n", args.required("--n")?)?;
    let q = parse_number("--q", args.required("--q")?)?;
    let m = match args.value_of("--m")? {
        Some(v) => parse_number("--m", v)?,
        None => default_params(&gate_set),
    };
    let with_index = !args.switch("--no-index");
    let out = args.required("--out")?.to_string();
    args.finish()?;

    eprintln!("generating {} (n={n}, q={q}, m={m}) ...", gate_set.name());
    let (raw, stats) = Generator::new(gate_set.clone(), GenConfig::standard(n, q, m)).run();
    let (pruned, _) = prune(&raw);
    eprintln!(
        "  {} classes, {} transformations after pruning, generated in {:.2?}",
        pruned.len(),
        pruned.num_transformations(),
        stats.total_time
    );
    let library = Library::new(gate_set.name(), pruned, with_index);
    library.save(&out).map_err(runtime)?;
    eprintln!("wrote {out} ({} bytes)", library.byte_len());
    Ok(())
}

fn pack(args: &[String]) -> Result<(), Failure> {
    let mut args = Args::new(args);
    let input = args.required("--in")?.to_string();
    let out = args.required("--out")?.to_string();
    // Known gate-set names are normalized to their canonical spelling
    // (`nam` → `Nam`) so packing is byte-stable; unknown names pass through.
    let gate_set_raw = args.value_of("--gate-set")?.unwrap_or("unknown");
    let gate_set = gate_set_by_name(gate_set_raw)
        .map(|g| g.name().to_string())
        .unwrap_or_else(|_| gate_set_raw.to_string());
    let with_index = !args.switch("--no-index");
    args.finish()?;

    let set = EccSet::load(&input).map_err(runtime)?;
    let library = Library::new(gate_set, set, with_index);
    library.save(&out).map_err(runtime)?;
    eprintln!(
        "packed {input} -> {out} ({} classes, {} bytes, index: {})",
        library.header().num_eccs,
        library.byte_len(),
        if library.header().has_index() {
            "prebuilt"
        } else {
            "absent"
        }
    );
    Ok(())
}

fn unpack(args: &[String]) -> Result<(), Failure> {
    let mut args = Args::new(args);
    let input = args.required("--in")?.to_string();
    let out = args.required("--out")?.to_string();
    args.finish()?;

    let library = Library::load(&input).map_err(runtime)?;
    library.ecc_set().save(&out).map_err(runtime)?;
    eprintln!(
        "unpacked {input} -> {out} ({} classes, {} circuits)",
        library.header().num_eccs,
        library.header().total_circuits
    );
    Ok(())
}

fn inspect(args: &[String]) -> Result<(), Failure> {
    let mut args = Args::new(args);
    let path = args
        .positional()
        .ok_or_else(|| usage("missing artifact path"))?
        .to_string();
    args.finish()?;

    let bytes = std::fs::read(&path).map_err(|e| runtime(format!("{path}: {e}")))?;
    let reader = LibraryReader::new(&bytes).map_err(runtime)?;
    let h = reader.header();
    println!("{path}: quartz transformation library (QTZL)");
    println!("  format version:     {}", h.format_version);
    println!("  generator version:  {}", h.generator_version);
    println!("  gate set:           {}", h.gate_set);
    println!(
        "  (n, q, m):          ({}, {}, {})",
        h.max_gates, h.num_qubits, h.num_params
    );
    println!("  classes:            {}", h.num_eccs);
    println!("  circuits:           {}", h.total_circuits);
    println!("  instructions:       {}", h.total_instructions);
    println!("  ecc payload:        {} bytes", h.ecc_len);
    println!(
        "  prebuilt index:     {}",
        if h.has_index() {
            format!("{} bytes", h.index_len)
        } else {
            "absent".to_string()
        }
    );
    println!("  checksum:           {:#018x}", h.checksum);
    if let Some(table) = reader.class_table() {
        println!(
            "  class table:        {} entries ({} bytes, lazy-loadable)",
            table.classes.len(),
            table.encoded_len()
        );
        if table.is_shard() {
            println!(
                "  shard:              {} of {} (parent: {} classes, {} transformations, \
                 checksum {:#018x})",
                table.shard_seq + 1,
                table.shard_count,
                table.parent_num_eccs,
                table.parent_num_xforms,
                table.parent_checksum
            );
            println!("  index slice:        {} parent ids", table.xform_ids.len());
        }
    }
    reader.verify_checksum().map_err(runtime)?;
    if let Some(index) = reader.decode_index().map_err(runtime)? {
        println!("  transformations:    {}", index.len());
        let populated = index
            .anchor_buckets()
            .iter()
            .filter(|b| !b.is_empty())
            .count();
        println!("  anchor buckets:     {populated} populated");
    }
    Ok(())
}

fn audit(args: &[String]) -> Result<(), Failure> {
    let mut args = Args::new(args);
    let json = args.switch("--json");
    let no_cache = args.switch("--no-cache");
    let write_stamp = args.switch("--write-stamp");
    let expect_full_cache = args.switch("--expect-full-cache");
    let threads = match args.value_of("--threads")? {
        Some(v) => parse_number("--threads", v)?,
        None => 0,
    };
    let path = args
        .positional()
        .ok_or_else(|| usage("missing artifact path"))?
        .to_string();
    args.finish()?;

    let auditor = Auditor::new(AuditConfig {
        threads,
        ..AuditConfig::default()
    });
    let report = auditor
        .audit_artifact(Path::new(&path), !no_cache)
        .map_err(runtime)?;
    if json {
        print!("{}", report.to_json());
    } else {
        println!("{report}");
    }
    if expect_full_cache && report.cache_hits < report.classes {
        return Err(runtime(format!(
            "{path}: expected every class to hit the verified-cache, but only {}/{} did \
             (stale or missing {path}.audit sidecar?)",
            report.cache_hits, report.classes
        )));
    }
    if let Some(stamp) = report.stamp() {
        if write_stamp {
            stamp
                .save_for(Path::new(&path))
                .map_err(|e| runtime(format!("writing sidecar: {e}")))?;
            eprintln!(
                "wrote {} ({} class digests)",
                AuditStamp::sidecar_path(Path::new(&path)).display(),
                stamp.class_digests.len()
            );
        }
        Ok(())
    } else {
        Err(runtime(format!(
            "{path}: audit failed with {} error(s)",
            report.errors()
        )))
    }
}

/// Same-shape replacement gates for `instr`, preferring gates *outside*
/// `gate_set` so the mutation also trips the instruction-level gate-set
/// lint (which carries the full ecc/circuit/instruction location).
fn replacement_gates(instr: &Instruction, gate_set: Option<&GateSet>) -> Vec<quartz_ir::Gate> {
    let mut candidates: Vec<quartz_ir::Gate> = ALL_GATES
        .into_iter()
        .filter(|g| {
            *g != instr.gate
                && g.num_qubits() == instr.qubits.len()
                && g.num_params() == instr.params.len()
        })
        .collect();
    if let Some(gs) = gate_set {
        candidates.sort_by_key(|g| gs.contains(*g));
    }
    candidates
}

fn mutate(args: &[String]) -> Result<(), Failure> {
    let mut args = Args::new(args);
    let input = args.required("--in")?.to_string();
    let out = args.required("--out")?.to_string();
    args.finish()?;

    let library = Library::load(&input).map_err(runtime)?;
    let header = library.header().clone();
    let set = library.ecc_set().clone();
    let gate_set = gate_set_by_name(&header.gate_set).ok();

    // Find the first (class, member, instruction, replacement gate) whose
    // mutation the verifier can prove unsound against the representative.
    // `Ecc::new` re-sorts circuits by precedence, so the printed location
    // uses the mutant's *post-sort* index — the one the audit reports.
    for (e, ecc) in set.eccs.iter().enumerate() {
        if ecc.len() < 2 {
            continue;
        }
        for c in 1..ecc.len() {
            let original = &ecc.circuits()[c];
            for (i, instr) in original.instructions().iter().enumerate() {
                for gate in replacement_gates(instr, gate_set.as_ref()) {
                    let mut mutated = Circuit::new(original.num_qubits(), original.num_params());
                    for (k, ins) in original.instructions().iter().enumerate() {
                        mutated.push(if k == i {
                            Instruction::new(gate, ins.qubits.clone(), ins.params.clone())
                        } else {
                            ins.clone()
                        });
                    }
                    // The mutation must be provably unsound, and must not
                    // collide with another member (which would make the
                    // post-sort index ambiguous).
                    let mut verifier = Verifier::default();
                    let still_equivalent = verifier
                        .check(ecc.representative(), &mutated)
                        .unwrap_or(true);
                    if still_equivalent || ecc.circuits().contains(&mutated) {
                        continue;
                    }
                    let mut circuits = ecc.circuits().to_vec();
                    circuits[c] = mutated.clone();
                    let new_ecc = Ecc::new(circuits);
                    let new_idx = new_ecc
                        .circuits()
                        .iter()
                        .position(|cc| *cc == mutated)
                        .expect("the mutant was just inserted");
                    if new_idx == 0 {
                        // The mutant sorted into the representative slot;
                        // the audit would blame the other members. Pick a
                        // different site for an unambiguous location.
                        continue;
                    }
                    let mut new_set = set.clone();
                    new_set.eccs[e] = new_ecc;
                    let mutated_library =
                        Library::new(header.gate_set.clone(), new_set, header.has_index());
                    mutated_library.save(&out).map_err(runtime)?;
                    println!(
                        "mutated {input} -> {out}: class {e} member {c}, instruction {i} \
                         {:?} -> {gate:?} (checksum re-packed: {:#018x})",
                        instr.gate,
                        mutated_library.header().checksum
                    );
                    println!("location: ecc {e} / circuit {new_idx} / instruction {i}");
                    return Ok(());
                }
            }
        }
    }
    Err(runtime(format!(
        "{input}: found no instruction whose mutation the verifier can prove unsound"
    )))
}

fn repack(args: &[String]) -> Result<(), Failure> {
    let mut args = Args::new(args);
    let input = args.required("--in")?.to_string();
    let out = args.required("--out")?.to_string();
    let format = match args.value_of("--format")? {
        None => FORMAT_VERSION_V2,
        Some("1") => FORMAT_VERSION,
        Some("2") => FORMAT_VERSION_V2,
        Some(other) => return Err(usage(format!("--format must be 1 or 2, got {other:?}"))),
    };
    args.finish()?;

    let bytes = std::fs::read(&input).map_err(|e| runtime(format!("{input}: {e}")))?;
    let reader = LibraryReader::new(&bytes).map_err(runtime)?;
    if reader.class_table().is_some_and(|t| t.is_shard()) {
        return Err(runtime(format!(
            "{input}: shards carry a slice of their parent's index and cannot be repacked \
             standalone — `quartz-lib merge` the group first"
        )));
    }
    let library = Library::from_bytes(&bytes).map_err(runtime)?;
    let header = library.header().clone();
    let repacked = Library::with_format(
        header.gate_set.clone(),
        library.into_parts().0,
        header.has_index(),
        format,
    );
    repacked.save(&out).map_err(runtime)?;
    eprintln!(
        "repacked {input} (v{}) -> {out} (v{format}, {} bytes)",
        header.format_version,
        repacked.byte_len()
    );
    Ok(())
}

fn shard(args: &[String]) -> Result<(), Failure> {
    let mut args = Args::new(args);
    let input = args.required("--in")?.to_string();
    let count = parse_number("--count", args.required("--count")?)?;
    let prefix = args.required("--out-prefix")?.to_string();
    args.finish()?;

    let library = Library::load(&input).map_err(runtime)?;
    let shards = shard_library(&library, count).map_err(runtime)?;
    for (i, bytes) in shards.iter().enumerate() {
        let path = format!("{prefix}.shard{i}.qtzl");
        std::fs::write(&path, bytes).map_err(|e| runtime(format!("{path}: {e}")))?;
        println!("{path}");
    }
    eprintln!(
        "sharded {input} ({} classes) into {} artifacts",
        library.header().num_eccs,
        shards.len()
    );
    Ok(())
}

fn merge(args: &[String]) -> Result<(), Failure> {
    let mut args = Args::new(args);
    let out = args.required("--out")?.to_string();
    let mut inputs = Vec::new();
    while let Some(path) = args.positional() {
        inputs.push(path.to_string());
    }
    args.finish()?;
    if inputs.is_empty() {
        return Err(usage("merge needs at least one shard artifact"));
    }

    let mut shards = Vec::with_capacity(inputs.len());
    for path in &inputs {
        shards.push(std::fs::read(path).map_err(|e| runtime(format!("{path}: {e}")))?);
    }
    let merged = merge_shards(&shards).map_err(runtime)?;
    merged.save(&out).map_err(runtime)?;
    eprintln!(
        "merged {} shards -> {out} ({} classes, {} bytes, checksum {:#018x} matches the \
         parent recorded in the group)",
        inputs.len(),
        merged.header().num_eccs,
        merged.byte_len(),
        merged.header().checksum
    );
    Ok(())
}

fn registry_command(args: &[String]) -> Result<(), Failure> {
    let Some((sub, rest)) = args.split_first() else {
        return Err(usage("registry needs a subcommand: add, get, list, or gc"));
    };
    match sub.as_str() {
        "add" => registry_add(rest),
        "get" => registry_get(rest),
        "list" => registry_list(rest),
        "gc" => registry_gc(rest),
        other => Err(usage(format!(
            "unknown registry subcommand {other:?} (expected add, get, list, or gc)"
        ))),
    }
}

fn registry_add(args: &[String]) -> Result<(), Failure> {
    let mut args = Args::new(args);
    let root = args.required("--root")?.to_string();
    let mut paths: Vec<PathBuf> = Vec::new();
    while let Some(path) = args.positional() {
        paths.push(PathBuf::from(path));
    }
    args.finish()?;
    if paths.is_empty() {
        return Err(usage("registry add needs at least one artifact path"));
    }

    let registry = Registry::open(&root).map_err(runtime)?;
    let key = registry.add(&paths).map_err(runtime)?;
    eprintln!(
        "published {} artifact(s) under key [{key}] in {root}",
        paths.len()
    );
    Ok(())
}

fn registry_get(args: &[String]) -> Result<(), Failure> {
    let mut args = Args::new(args);
    let root = args.required("--root")?.to_string();
    // Known gate-set names normalize to their header spelling, as `pack`
    // does, so `--gate-set nam` finds artifacts recorded as "Nam".
    let gate_set_raw = args.required("--gate-set")?;
    let gate_set = gate_set_by_name(gate_set_raw)
        .map(|g| g.name().to_string())
        .unwrap_or_else(|_| gate_set_raw.to_string());
    let n = parse_number("--n", args.required("--n")?)?;
    let q = parse_number("--q", args.required("--q")?)?;
    let key = RegistryKey {
        max_gates: n as u32,
        num_qubits: q as u32,
        num_params: match args.value_of("--m")? {
            Some(v) => parse_number("--m", v)? as u32,
            None => default_params(&gate_set_by_name(gate_set_raw)?) as u32,
        },
        generator_version: match args.value_of("--generator-version")? {
            Some(v) => parse_number("--generator-version", v)? as u32,
            None => GENERATOR_VERSION,
        },
        gate_set,
    };
    args.finish()?;

    let registry = Registry::open(&root).map_err(runtime)?;
    let paths = registry.get(&key).map_err(runtime)?;
    for path in &paths {
        println!("{}", path.display());
    }
    eprintln!(
        "key [{key}] resolves to {} verified artifact(s)",
        paths.len()
    );
    Ok(())
}

fn registry_list(args: &[String]) -> Result<(), Failure> {
    let mut args = Args::new(args);
    let root = args.required("--root")?.to_string();
    args.finish()?;

    let registry = Registry::open(&root).map_err(runtime)?;
    let entries = registry.list().map_err(runtime)?;
    for entry in &entries {
        println!(
            "{}  {} artifact(s)  {}",
            entry.key,
            entry.shard_count,
            entry.blobs.join(" ")
        );
    }
    eprintln!("{} key(s) published in {root}", entries.len());
    Ok(())
}

fn registry_gc(args: &[String]) -> Result<(), Failure> {
    let mut args = Args::new(args);
    let root = args.required("--root")?.to_string();
    args.finish()?;

    let registry = Registry::open(&root).map_err(runtime)?;
    let removed = registry.gc().map_err(runtime)?;
    eprintln!("removed {removed} unreferenced file(s) from {root}");
    Ok(())
}

fn verify_checksum(args: &[String]) -> Result<(), Failure> {
    let mut args = Args::new(args);
    let deep = args.switch("--deep");
    let path = args
        .positional()
        .ok_or_else(|| usage("missing artifact path"))?
        .to_string();
    args.finish()?;

    let bytes = std::fs::read(&path).map_err(|e| runtime(format!("{path}: {e}")))?;
    let reader = LibraryReader::new(&bytes).map_err(runtime)?;
    reader.verify_checksum().map_err(runtime)?;
    let header = reader.header().clone();
    if header.generator_version != GENERATOR_VERSION {
        return Err(runtime(format!(
            "{path}: artifact was produced by generator version {} but this build is version \
             {GENERATOR_VERSION} — regenerate it (quartz-lib generate --gate-set {} --n {} --q {} \
             --m {})",
            header.generator_version,
            header.gate_set.to_ascii_lowercase(),
            header.max_gates,
            header.num_qubits,
            header.num_params
        )));
    }
    println!("{path}: checksum {:#018x} ok", header.checksum);
    if deep {
        let set = reader.decode_ecc_set().map_err(runtime)?;
        reader.decode_index().map_err(runtime)?;
        if reader.class_table().is_some_and(|t| t.is_shard()) {
            // A shard's index section is a slice of its parent's, so whole-
            // artifact re-packing can't reproduce it. Decoding above already
            // re-hashed every class payload and the index section against
            // the digests sealed under the artifact checksum, which is the
            // deep check for shards.
            println!(
                "{path}: deep verification ok ({} shard classes and index slice \
                 digest-verified, payload decodes)",
                set.eccs.len()
            );
        } else {
            let repacked = Library::with_format(
                header.gate_set.clone(),
                set,
                header.has_index(),
                header.format_version,
            )
            .to_bytes();
            if repacked != bytes {
                return Err(runtime(format!(
                    "{path}: artifact is stale — re-packing its own payload with the current \
                     pipeline produces different bytes (regenerate or re-pack it)"
                )));
            }
            println!("{path}: deep verification ok (payload decodes, re-pack is byte-identical)");
        }
    }
    Ok(())
}
