//! Pruning of redundant transformations (paper §5).
//!
//! Two passes run after RepGen:
//!
//! * **ECC simplification** (§5.1): remove qubits and parameters that no
//!   circuit in a class uses, then deduplicate classes that become identical,
//!   including up to a permutation of the parameters.
//! * **Common subcircuit pruning** (§5.2): drop class members that share a
//!   first or last gate with their representative; Theorem 4 shows the
//!   corresponding transformations are subsumed by smaller ones.

use crate::ecc::{Ecc, EccSet};
use quartz_ir::Circuit;
use std::collections::HashSet;

/// Statistics for the pruning passes (paper Table 6).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Total circuits before any pruning.
    pub circuits_before: usize,
    /// Total circuits after ECC simplification.
    pub circuits_after_simplification: usize,
    /// Total circuits after common-subcircuit pruning.
    pub circuits_after_common_subcircuit: usize,
    /// Number of classes merged or dropped as duplicates during
    /// simplification.
    pub duplicate_classes_removed: usize,
}

/// Runs ECC simplification (§5.1): removes unused qubits and parameters from
/// every class and drops duplicate classes (including duplicates up to a
/// permutation of the parameters).
pub fn simplify_eccs(set: &EccSet) -> (EccSet, usize) {
    let mut seen: HashSet<Vec<Circuit>> = HashSet::new();
    let mut out = EccSet::new(set.num_qubits, set.num_params);
    let mut duplicates = 0usize;

    for ecc in &set.eccs {
        let simplified = simplify_ecc(ecc);
        // Canonical key: the member list under the best parameter
        // permutation (smallest under the circuit precedence order, compared
        // member-wise).
        let key = canonical_under_param_permutation(&simplified);
        if seen.insert(key) {
            out.eccs.push(simplified);
        } else {
            duplicates += 1;
        }
    }
    (out, duplicates)
}

/// Removes unused qubits and parameters from a single class.
fn simplify_ecc(ecc: &Ecc) -> Ecc {
    let circuits = ecc.circuits();
    let num_qubits = circuits[0].num_qubits();
    let num_params = circuits[0].num_params();

    // Union of used qubits / parameters across all members.
    let mut used_qubits = vec![false; num_qubits];
    let mut used_params = vec![false; num_params];
    for c in circuits {
        for q in c.used_qubits() {
            used_qubits[q] = true;
        }
        for p in c.used_params() {
            used_params[p] = true;
        }
    }

    let qubit_map: Vec<usize> = {
        let mut map = vec![0usize; num_qubits];
        let mut next = 0;
        for (q, m) in map.iter_mut().enumerate() {
            if used_qubits[q] {
                *m = next;
                next += 1;
            }
        }
        map
    };
    let new_num_qubits = used_qubits.iter().filter(|&&u| u).count().max(1);
    let param_map: Vec<usize> = {
        let mut map = vec![0usize; num_params];
        let mut next = 0;
        for (p, m) in map.iter_mut().enumerate() {
            if used_params[p] {
                *m = next;
                next += 1;
            }
        }
        map
    };
    let new_num_params = used_params.iter().filter(|&&u| u).count();

    let members: Vec<Circuit> = circuits
        .iter()
        .map(|c| {
            c.remap_qubits(&qubit_map, new_num_qubits)
                .remap_params(&param_map, new_num_params)
        })
        .collect();
    Ecc::new(members)
}

/// Canonical member list under all permutations of the class's parameters.
fn canonical_under_param_permutation(ecc: &Ecc) -> Vec<Circuit> {
    let num_params = ecc.representative().num_params();
    let members: Vec<Circuit> = ecc.circuits().to_vec();
    if num_params <= 1 {
        return members;
    }
    let mut best: Option<Vec<Circuit>> = None;
    for perm in permutations(num_params) {
        let mut renamed: Vec<Circuit> = members
            .iter()
            .map(|c| c.remap_params(&perm, num_params))
            .collect();
        renamed.sort_by(|a, b| a.precedence_cmp(b));
        let better = match &best {
            None => true,
            Some(cur) => list_precedes(&renamed, cur),
        };
        if better {
            best = Some(renamed);
        }
    }
    best.unwrap_or(members)
}

fn list_precedes(a: &[Circuit], b: &[Circuit]) -> bool {
    for (x, y) in a.iter().zip(b.iter()) {
        match x.precedence_cmp(y) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => continue,
        }
    }
    a.len() < b.len()
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    fn rec(n: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if current.len() == n {
            out.push(current.clone());
            return;
        }
        for i in 0..n {
            if !current.contains(&i) {
                current.push(i);
                rec(n, current, out);
                current.pop();
            }
        }
    }
    rec(n, &mut current, &mut out);
    out
}

/// Runs common-subcircuit pruning (§5.2): removes non-representative members
/// that share a first gate or a last gate with their representative, then
/// drops classes that become singletons.
pub fn prune_common_subcircuits(set: &EccSet) -> EccSet {
    let mut out = EccSet::new(set.num_qubits, set.num_params);
    for ecc in &set.eccs {
        let rep = ecc.representative().clone();
        let mut members = vec![rep.clone()];
        for c in ecc.circuits().iter().skip(1) {
            if shares_boundary_gate(&rep, c) {
                continue;
            }
            members.push(c.clone());
        }
        if members.len() >= 2 {
            out.eccs.push(Ecc::new(members));
        }
    }
    out
}

/// Returns `true` if the two circuits share an identical first instruction or
/// an identical last instruction (the single-gate check the paper uses to
/// implement common-subcircuit pruning).
fn shares_boundary_gate(a: &Circuit, b: &Circuit) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    let a_first = &a.instructions()[0];
    let b_first = &b.instructions()[0];
    let a_last = a.instructions().last().expect("non-empty");
    let b_last = b.instructions().last().expect("non-empty");
    a_first == b_first || a_last == b_last
}

/// Runs both pruning passes and reports statistics.
pub fn prune(set: &EccSet) -> (EccSet, PruneStats) {
    let circuits_before = set.total_circuits();
    let (simplified, duplicate_classes_removed) = simplify_eccs(set);
    let circuits_after_simplification = simplified.total_circuits();
    let pruned = prune_common_subcircuits(&simplified);
    let stats = PruneStats {
        circuits_before,
        circuits_after_simplification,
        circuits_after_common_subcircuit: pruned.total_circuits(),
        duplicate_classes_removed,
    };
    (pruned, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quartz_ir::{equivalent_up_to_phase, Gate, Instruction, ParamExpr};

    fn h(q: usize, nq: usize) -> Circuit {
        let mut c = Circuit::new(nq, 0);
        c.push(Instruction::new(Gate::H, vec![q], vec![]));
        c
    }

    #[test]
    fn simplification_removes_unused_qubits() {
        // Two equivalent single-qubit circuits defined over 3 qubits, using
        // only qubit 2.
        let mut a = Circuit::new(3, 0);
        a.push(Instruction::new(Gate::H, vec![2], vec![]));
        a.push(Instruction::new(Gate::H, vec![2], vec![]));
        let b = Circuit::new(3, 0);
        let ecc = Ecc::new(vec![a, b]);
        let mut set = EccSet::new(3, 0);
        set.eccs.push(ecc);
        let (simplified, _) = simplify_eccs(&set);
        assert_eq!(simplified.eccs[0].circuits()[1].num_qubits(), 1);
        assert_eq!(simplified.eccs[0].circuits()[1].used_qubits(), vec![0]);
    }

    #[test]
    fn simplification_merges_duplicate_classes() {
        // The same H-H ≡ empty identity expressed on qubit 0 and on qubit 1
        // becomes a single class after unused-qubit removal.
        let make = |q: usize| {
            let mut a = Circuit::new(2, 0);
            a.push(Instruction::new(Gate::H, vec![q], vec![]));
            a.push(Instruction::new(Gate::H, vec![q], vec![]));
            Ecc::new(vec![a, Circuit::new(2, 0)])
        };
        let mut set = EccSet::new(2, 0);
        set.eccs.push(make(0));
        set.eccs.push(make(1));
        let (simplified, duplicates) = simplify_eccs(&set);
        assert_eq!(simplified.len(), 1);
        assert_eq!(duplicates, 1);
    }

    #[test]
    fn simplification_merges_parameter_permutations() {
        // Rz(p0) Rz(p1) ≡ Rz(p1) Rz(p0), written with the two parameter
        // names swapped, is the same class up to parameter permutation.
        let make = |first: usize, second: usize| {
            let m = 2;
            let mut a = Circuit::new(1, m);
            a.push(Instruction::new(
                Gate::Rz,
                vec![0],
                vec![ParamExpr::var(first, m)],
            ));
            a.push(Instruction::new(
                Gate::Rz,
                vec![0],
                vec![ParamExpr::var(second, m)],
            ));
            let mut b = Circuit::new(1, m);
            b.push(Instruction::new(
                Gate::Rz,
                vec![0],
                vec![ParamExpr::var(second, m)],
            ));
            b.push(Instruction::new(
                Gate::Rz,
                vec![0],
                vec![ParamExpr::var(first, m)],
            ));
            Ecc::new(vec![a, b])
        };
        let mut set = EccSet::new(1, 2);
        set.eccs.push(make(0, 1));
        set.eccs.push(make(1, 0));
        let (simplified, duplicates) = simplify_eccs(&set);
        assert_eq!(simplified.len(), 1);
        assert_eq!(duplicates, 1);
    }

    #[test]
    fn common_subcircuit_pruning_drops_shared_boundary_members() {
        // Class {empty, H0 H0, H0 H0 H1 H1}: the 4-gate member shares its
        // first gate with the 2-gate member? No — members are compared with
        // the representative (empty), which has no gates, so nothing shares a
        // boundary with it. Use a class whose representative is nonempty.
        let rep = h(0, 2);
        let mut with_prefix = h(0, 2);
        with_prefix.push(Instruction::new(Gate::X, vec![1], vec![]));
        with_prefix.push(Instruction::new(Gate::X, vec![1], vec![]));
        let mut different = Circuit::new(2, 0);
        different.push(Instruction::new(Gate::X, vec![0], vec![]));
        different.push(Instruction::new(Gate::H, vec![0], vec![]));
        different.push(Instruction::new(Gate::X, vec![0], vec![]));
        // rep = H0; with_prefix = H0 X1 X1 (shares first gate) ;
        // different = X0 H0 X0 (shares nothing).
        let ecc = Ecc::new(vec![rep.clone(), with_prefix.clone(), different.clone()]);
        let mut set = EccSet::new(2, 0);
        set.eccs.push(ecc);
        let pruned = prune_common_subcircuits(&set);
        assert_eq!(pruned.eccs[0].len(), 2);
        assert!(pruned.eccs[0].contains(&different));
        assert!(!pruned.eccs[0].contains(&with_prefix));
    }

    #[test]
    fn pruning_preserves_member_equivalence() {
        use crate::repgen::{GenConfig, Generator};
        use quartz_ir::GateSet;
        let (set, _) = Generator::new(GateSet::nam(), GenConfig::standard(2, 2, 1)).run();
        let (pruned, stats) = prune(&set);
        assert!(stats.circuits_after_common_subcircuit <= stats.circuits_after_simplification);
        assert!(stats.circuits_after_simplification <= stats.circuits_before);
        for ecc in &pruned.eccs {
            let rep = ecc.representative();
            for c in ecc.circuits() {
                assert!(equivalent_up_to_phase(rep, c, &[0.61], 1e-8));
            }
        }
    }

    #[test]
    fn full_prune_pipeline_counts() {
        let mut set = EccSet::new(2, 0);
        set.eccs.push(Ecc::new(vec![
            h(0, 2).appended(Instruction::new(Gate::H, vec![0], vec![])),
            Circuit::new(2, 0),
        ]));
        let (pruned, stats) = prune(&set);
        assert_eq!(stats.circuits_before, 2);
        assert_eq!(
            pruned.total_circuits(),
            stats.circuits_after_common_subcircuit
        );
    }
}
