//! Hand-written JSON codec for [`EccSet`].
//!
//! The workspace builds fully offline, so `serde_json` is unavailable; ECC
//! sets are the only artifact that needs durable *textual* serialization
//! (they are the product of expensive generation runs, and JSON is the
//! interchange format the original Quartz tooling reads), and their shape is
//! small and fixed, so a direct codec is both simpler and faster than a
//! generic framework. For the compact binary format services load at
//! startup, see [`crate::library`] (`quartz-lib pack` converts between the
//! two).
//!
//! Decoding errors carry source context: every syntax *and* shape error is
//! reported with the line, column, and byte offset of the offending token,
//! e.g. `unknown gate "nope" at line 3, column 18 (byte 57)`.
//!
//! The format matches what `serde_json` would produce for the derive
//! annotations on these types:
//!
//! ```json
//! {"num_qubits":2,"num_params":1,"eccs":[{"circuits":[
//!   {"num_qubits":2,"num_params":1,"instructions":[
//!     {"gate":"rz","qubits":[0],"params":[{"coeffs":[1],"const_pi4":0}]}
//!   ]}
//! ]}]}
//! ```

use crate::ecc::{Ecc, EccSet};
use quartz_ir::{Circuit, Gate, Instruction, ParamExpr};
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Serializes an ECC set to a JSON string.
pub fn ecc_set_to_json(set: &EccSet) -> String {
    let mut out = String::new();
    write!(
        out,
        "{{\"num_qubits\":{},\"num_params\":{},\"eccs\":[",
        set.num_qubits, set.num_params
    )
    .unwrap();
    for (i, ecc) in set.eccs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"circuits\":[");
        for (j, circuit) in ecc.circuits().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write_circuit(&mut out, circuit);
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

fn write_circuit(out: &mut String, circuit: &Circuit) {
    write!(
        out,
        "{{\"num_qubits\":{},\"num_params\":{},\"instructions\":[",
        circuit.num_qubits(),
        circuit.num_params()
    )
    .unwrap();
    for (i, instr) in circuit.instructions().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{{\"gate\":\"{}\",\"qubits\":[", instr.gate.name()).unwrap();
        for (j, q) in instr.qubits.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write!(out, "{q}").unwrap();
        }
        out.push_str("],\"params\":[");
        for (j, p) in instr.params.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"coeffs\":[");
            for (k, c) in p.coeffs().iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write!(out, "{c}").unwrap();
            }
            write!(out, "],\"const_pi4\":{}}}", p.const_pi4()).unwrap();
        }
        out.push_str("]}");
    }
    out.push_str("]}");
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// An error with an optional byte offset into the source, rendered with
/// line/column context once the whole decode fails.
#[derive(Debug)]
struct JsonError {
    message: String,
    offset: Option<usize>,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: Some(offset),
        }
    }

    /// Formats the error with 1-based line/column derived from `source`.
    /// The column counts *characters*, not bytes (non-ASCII text before the
    /// offending token must not shift it), while the raw byte offset is
    /// reported alongside.
    fn render(&self, source: &str) -> String {
        match self.offset {
            Some(offset) => {
                let clamped = offset.min(source.len());
                let prefix = &source.as_bytes()[..clamped];
                let line = 1 + prefix.iter().filter(|&&b| b == b'\n').count();
                let line_start = prefix
                    .iter()
                    .rposition(|&b| b == b'\n')
                    .map(|p| p + 1)
                    .unwrap_or(0);
                let column = String::from_utf8_lossy(&prefix[line_start..])
                    .chars()
                    .count()
                    + 1;
                format!(
                    "{} at line {line}, column {column} (byte {offset})",
                    self.message
                )
            }
            None => self.message.clone(),
        }
    }
}

/// Deserializes an ECC set from a JSON string.
///
/// # Errors
///
/// Returns a description of the first syntax or shape error encountered,
/// including the line, column, and byte offset of the offending token.
pub fn ecc_set_from_json(json: &str) -> Result<EccSet, String> {
    ecc_set_from_json_inner(json).map_err(|e| e.render(json))
}

fn ecc_set_from_json_inner(json: &str) -> Result<EccSet, JsonError> {
    let value = Parser::new(json).parse_document()?;
    let obj = value.as_object("ECC set")?;
    let num_qubits = obj.field("num_qubits")?.as_usize("num_qubits")?;
    let num_params = obj.field("num_params")?.as_usize("num_params")?;
    let mut set = EccSet::new(num_qubits, num_params);
    for ecc_value in obj.field("eccs")?.as_array("eccs")? {
        let ecc_obj = ecc_value.as_object("ECC")?;
        let mut circuits = Vec::new();
        for circuit_value in ecc_obj.field("circuits")?.as_array("circuits")? {
            circuits.push(circuit_from_value(circuit_value)?);
        }
        if circuits.is_empty() {
            return Err(JsonError::at(
                ecc_value.offset,
                "an ECC must contain at least one circuit",
            ));
        }
        set.eccs.push(Ecc::new(circuits));
    }
    Ok(set)
}

fn circuit_from_value(value: &Spanned) -> Result<Circuit, JsonError> {
    let obj = value.as_object("circuit")?;
    let num_qubits = obj.field("num_qubits")?.as_usize("num_qubits")?;
    let num_params = obj.field("num_params")?.as_usize("num_params")?;
    let mut circuit = Circuit::new(num_qubits, num_params);
    for instr_value in obj.field("instructions")?.as_array("instructions")? {
        let instr = obj_to_instruction(instr_value, num_qubits, num_params)?;
        circuit.push(instr);
    }
    Ok(circuit)
}

fn obj_to_instruction(
    value: &Spanned,
    num_qubits: usize,
    num_params: usize,
) -> Result<Instruction, JsonError> {
    let obj = value.as_object("instruction")?;
    let gate_field = obj.field("gate")?;
    let gate_name = gate_field.as_str("gate")?;
    let gate = Gate::from_name(gate_name)
        .ok_or_else(|| JsonError::at(gate_field.offset, format!("unknown gate {gate_name:?}")))?;
    let mut qubits = Vec::new();
    for q_value in obj.field("qubits")?.as_array("qubits")? {
        let q = q_value.as_usize("qubit operand")?;
        if q >= num_qubits {
            return Err(JsonError::at(
                q_value.offset,
                format!("qubit {q} out of range for circuit with {num_qubits} qubits"),
            ));
        }
        if qubits.contains(&q) {
            return Err(JsonError::at(
                q_value.offset,
                format!("repeated qubit operand {q} for gate {gate_name}"),
            ));
        }
        qubits.push(q);
    }
    if qubits.len() != gate.num_qubits() {
        return Err(JsonError::at(
            value.offset,
            format!(
                "gate {gate_name} expects {} qubit operands, got {}",
                gate.num_qubits(),
                qubits.len()
            ),
        ));
    }
    let mut params = Vec::new();
    for p in obj.field("params")?.as_array("params")? {
        let p_obj = p.as_object("parameter expression")?;
        let mut coeffs = Vec::new();
        for c in p_obj.field("coeffs")?.as_array("coeffs")? {
            coeffs.push(c.as_i32("parameter coefficient")?);
        }
        if coeffs.len() != num_params {
            return Err(JsonError::at(
                p.offset,
                format!(
                    "parameter expression has {} coefficients, circuit has {num_params} parameters",
                    coeffs.len()
                ),
            ));
        }
        let const_pi4 = p_obj.field("const_pi4")?.as_i32("const_pi4")?;
        params.push(ParamExpr::from_parts(coeffs, const_pi4));
    }
    if params.len() != gate.num_params() {
        return Err(JsonError::at(
            value.offset,
            format!(
                "gate {gate_name} expects {} parameters, got {}",
                gate.num_params(),
                params.len()
            ),
        ));
    }
    Ok(Instruction::new(gate, qubits, params))
}

// ---------------------------------------------------------------------------
// A minimal JSON value tree and recursive-descent parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Object(Vec<(String, Spanned)>),
    Array(Vec<Spanned>),
    String(String),
    Int(i64),
}

impl JsonValue {
    fn describe(&self) -> String {
        match self {
            JsonValue::Object(_) => "an object".to_string(),
            JsonValue::Array(_) => "an array".to_string(),
            JsonValue::String(s) => format!("string {s:?}"),
            JsonValue::Int(n) => format!("integer {n}"),
        }
    }
}

/// A parsed value together with the byte offset where it began — the anchor
/// for shape-error messages.
#[derive(Debug, Clone, PartialEq)]
struct Spanned {
    offset: usize,
    value: JsonValue,
}

struct JsonObject<'a> {
    offset: usize,
    fields: &'a [(String, Spanned)],
}

impl Spanned {
    fn as_object(&self, what: &str) -> Result<JsonObject<'_>, JsonError> {
        match &self.value {
            JsonValue::Object(fields) => Ok(JsonObject {
                offset: self.offset,
                fields,
            }),
            other => Err(JsonError::at(
                self.offset,
                format!(
                    "expected {what} to be an object, found {}",
                    other.describe()
                ),
            )),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Spanned], JsonError> {
        match &self.value {
            JsonValue::Array(items) => Ok(items),
            other => Err(JsonError::at(
                self.offset,
                format!("expected {what} to be an array, found {}", other.describe()),
            )),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, JsonError> {
        match &self.value {
            JsonValue::String(s) => Ok(s),
            other => Err(JsonError::at(
                self.offset,
                format!("expected {what} to be a string, found {}", other.describe()),
            )),
        }
    }

    fn as_usize(&self, what: &str) -> Result<usize, JsonError> {
        match &self.value {
            JsonValue::Int(n) if *n >= 0 => Ok(*n as usize),
            other => Err(JsonError::at(
                self.offset,
                format!(
                    "expected {what} to be a non-negative integer, found {}",
                    other.describe()
                ),
            )),
        }
    }

    fn as_i32(&self, what: &str) -> Result<i32, JsonError> {
        match &self.value {
            JsonValue::Int(n) => i32::try_from(*n)
                .map_err(|_| JsonError::at(self.offset, format!("{what} out of i32 range: {n}"))),
            other => Err(JsonError::at(
                self.offset,
                format!(
                    "expected {what} to be an integer, found {}",
                    other.describe()
                ),
            )),
        }
    }
}

impl JsonObject<'_> {
    fn field(&self, name: &str) -> Result<&Spanned, JsonError> {
        self.fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| JsonError::at(self.offset, format!("missing field {name:?}")))
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Spanned, JsonError> {
        let value = self.parse_value()?;
        self.skip_whitespace();
        if self.pos != self.bytes.len() {
            return Err(JsonError::at(self.pos, "trailing characters"));
        }
        Ok(value)
    }

    fn skip_whitespace(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, JsonError> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| JsonError::at(self.pos, "unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        let got = self.peek()?;
        if got != b {
            return Err(JsonError::at(
                self.pos,
                format!("expected {:?}, found {:?}", b as char, got as char),
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Spanned, JsonError> {
        let b = self.peek()?;
        let offset = self.pos;
        let value = match b {
            b'{' => self.parse_object()?,
            b'[' => self.parse_array()?,
            b'"' => JsonValue::String(self.parse_string()?),
            b'-' | b'0'..=b'9' => self.parse_int()?,
            other => {
                return Err(JsonError::at(
                    self.pos,
                    format!("unexpected character {:?}", other as char),
                ))
            }
        };
        Ok(Spanned { offset, value })
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.peek()?;
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                other => {
                    return Err(JsonError::at(
                        self.pos,
                        format!("expected ',' or '}}', found {:?}", other as char),
                    ))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => {
                    return Err(JsonError::at(
                        self.pos,
                        format!("expected ',' or ']', found {:?}", other as char),
                    ))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut segment_start = self.pos;
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| JsonError::at(self.pos, "unterminated string"))?;
            match b {
                b'"' | b'\\' => {
                    // `"` and `\` are ASCII, so the segment boundaries fall on
                    // UTF-8 character boundaries of the (already valid) input
                    // and multi-byte characters pass through losslessly.
                    out.push_str(
                        std::str::from_utf8(&self.bytes[segment_start..self.pos])
                            .expect("slices of a str between ASCII delimiters are valid UTF-8"),
                    );
                    self.pos += 1;
                    if b == b'"' {
                        return Ok(out);
                    }
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| JsonError::at(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => {
                            return Err(JsonError::at(
                                self.pos - 1,
                                format!("unsupported escape \\{}", other as char),
                            ));
                        }
                    }
                    segment_start = self.pos;
                }
                _ => self.pos += 1,
            }
        }
    }

    fn parse_int(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_whitespace();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<i64>()
            .map(JsonValue::Int)
            .map_err(|_| JsonError::at(start, format!("invalid integer {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(input: &str) -> Result<Spanned, String> {
        Parser::new(input)
            .parse_document()
            .map_err(|e| e.render(input))
    }

    #[test]
    fn parser_handles_nesting_and_rejects_garbage() {
        let v = parse(r#"{"a":[1,-2,{"b":"x"}],"c":3}"#).unwrap();
        let obj = v.as_object("root").unwrap();
        assert_eq!(obj.field("c").unwrap().as_usize("c").unwrap(), 3);
        let arr = obj.field("a").unwrap().as_array("a").unwrap();
        assert_eq!(arr[1].as_i32("x").unwrap(), -2);
        assert!(parse("not json").is_err());
        assert!(parse("{\"a\":1").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
    }

    #[test]
    fn strings_preserve_escapes_and_non_ascii() {
        let v = parse(r#"{"k":"π/4 → rz\n\"quoted\""}"#).unwrap();
        let obj = v.as_object("root").unwrap();
        let s = obj.field("k").unwrap().as_str("k").unwrap().to_string();
        assert_eq!(s, "π/4 → rz\n\"quoted\"");
        assert!(parse(r#""bad \A escape""#).is_err());
    }

    #[test]
    fn malformed_shapes_are_reported() {
        assert!(ecc_set_from_json("[1,2]").is_err());
        assert!(
            ecc_set_from_json(r#"{"num_qubits":1,"num_params":0,"eccs":[{"circuits":[]}]}"#)
                .is_err()
        );
        let bad_gate = r#"{"num_qubits":1,"num_params":0,"eccs":[{"circuits":[
            {"num_qubits":1,"num_params":0,"instructions":[{"gate":"nope","qubits":[0],"params":[]}]}
        ]}]}"#;
        assert!(ecc_set_from_json(bad_gate)
            .unwrap_err()
            .contains("unknown gate"));
        let bad_arity = r#"{"num_qubits":2,"num_params":0,"eccs":[{"circuits":[
            {"num_qubits":2,"num_params":0,"instructions":[{"gate":"cx","qubits":[0],"params":[]}]}
        ]}]}"#;
        assert!(ecc_set_from_json(bad_arity)
            .unwrap_err()
            .contains("qubit operands"));
    }

    #[test]
    fn errors_carry_line_and_column_context() {
        // The bogus gate name sits on line 2; the error must say so, and
        // must point at the gate string, not the document start.
        let bad_gate = "{\"num_qubits\":1,\"num_params\":0,\"eccs\":[{\"circuits\":[\n  \
            {\"num_qubits\":1,\"num_params\":0,\"instructions\":[{\"gate\":\"nope\",\"qubits\":[0],\"params\":[]}]}\n\
            ]}]}";
        let err = ecc_set_from_json(bad_gate).unwrap_err();
        assert!(err.contains("unknown gate \"nope\""), "{err}");
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("byte "), "{err}");

        // Syntax errors carry the offset of the offending byte.
        let err = ecc_set_from_json("{\"num_qubits\":1,\n!").unwrap_err();
        assert!(err.contains("line 2, column 1"), "{err}");

        // A shape error on a nested value points at that value.
        let err =
            ecc_set_from_json(r#"{"num_qubits":"one","num_params":0,"eccs":[]}"#).unwrap_err();
        assert!(err.contains("non-negative integer"), "{err}");
        assert!(err.contains("byte 14"), "{err}");

        // Columns count characters, not bytes: the two-byte 'π' before the
        // offending '!' (byte 6 but the 6th character, not the 7th) must
        // not shift the reported column.
        let err = ecc_set_from_json("{\"π\":!}").unwrap_err();
        assert!(err.contains("column 6 (byte 6)"), "{err}");
        let err = ecc_set_from_json("{\"ππ\":!}").unwrap_err();
        assert!(err.contains("column 7 (byte 8)"), "{err}");
    }
}
