//! Hand-written JSON codec for [`EccSet`].
//!
//! The workspace builds fully offline, so `serde_json` is unavailable; ECC
//! sets are the only artifact that needs durable serialization (they are the
//! product of expensive generation runs), and their shape is small and fixed,
//! so a direct codec is both simpler and faster than a generic framework.
//!
//! The format matches what `serde_json` would produce for the derive
//! annotations on these types:
//!
//! ```json
//! {"num_qubits":2,"num_params":1,"eccs":[{"circuits":[
//!   {"num_qubits":2,"num_params":1,"instructions":[
//!     {"gate":"rz","qubits":[0],"params":[{"coeffs":[1],"const_pi4":0}]}
//!   ]}
//! ]}]}
//! ```

use crate::ecc::{Ecc, EccSet};
use quartz_ir::{Circuit, Gate, Instruction, ParamExpr};
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Serializes an ECC set to a JSON string.
pub fn ecc_set_to_json(set: &EccSet) -> String {
    let mut out = String::new();
    write!(
        out,
        "{{\"num_qubits\":{},\"num_params\":{},\"eccs\":[",
        set.num_qubits, set.num_params
    )
    .unwrap();
    for (i, ecc) in set.eccs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"circuits\":[");
        for (j, circuit) in ecc.circuits().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write_circuit(&mut out, circuit);
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

fn write_circuit(out: &mut String, circuit: &Circuit) {
    write!(
        out,
        "{{\"num_qubits\":{},\"num_params\":{},\"instructions\":[",
        circuit.num_qubits(),
        circuit.num_params()
    )
    .unwrap();
    for (i, instr) in circuit.instructions().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{{\"gate\":\"{}\",\"qubits\":[", instr.gate.name()).unwrap();
        for (j, q) in instr.qubits.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write!(out, "{q}").unwrap();
        }
        out.push_str("],\"params\":[");
        for (j, p) in instr.params.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"coeffs\":[");
            for (k, c) in p.coeffs().iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write!(out, "{c}").unwrap();
            }
            write!(out, "],\"const_pi4\":{}}}", p.const_pi4()).unwrap();
        }
        out.push_str("]}");
    }
    out.push_str("]}");
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Deserializes an ECC set from a JSON string.
///
/// # Errors
///
/// Returns a description of the first syntax or shape error encountered.
pub fn ecc_set_from_json(json: &str) -> Result<EccSet, String> {
    let value = Parser::new(json).parse_document()?;
    let obj = value.as_object("ECC set")?;
    let num_qubits = obj.field("num_qubits")?.as_usize("num_qubits")?;
    let num_params = obj.field("num_params")?.as_usize("num_params")?;
    let mut set = EccSet::new(num_qubits, num_params);
    for ecc_value in obj.field("eccs")?.as_array("eccs")? {
        let ecc_obj = ecc_value.as_object("ECC")?;
        let mut circuits = Vec::new();
        for circuit_value in ecc_obj.field("circuits")?.as_array("circuits")? {
            circuits.push(circuit_from_value(circuit_value)?);
        }
        if circuits.is_empty() {
            return Err("an ECC must contain at least one circuit".to_string());
        }
        set.eccs.push(Ecc::new(circuits));
    }
    Ok(set)
}

fn circuit_from_value(value: &JsonValue) -> Result<Circuit, String> {
    let obj = value.as_object("circuit")?;
    let num_qubits = obj.field("num_qubits")?.as_usize("num_qubits")?;
    let num_params = obj.field("num_params")?.as_usize("num_params")?;
    let mut circuit = Circuit::new(num_qubits, num_params);
    for instr_value in obj.field("instructions")?.as_array("instructions")? {
        let instr = obj_to_instruction(instr_value, num_qubits, num_params)?;
        circuit.push(instr);
    }
    Ok(circuit)
}

fn obj_to_instruction(
    value: &JsonValue,
    num_qubits: usize,
    num_params: usize,
) -> Result<Instruction, String> {
    let obj = value.as_object("instruction")?;
    let gate_name = obj.field("gate")?.as_str("gate")?;
    let gate = Gate::from_name(gate_name).ok_or_else(|| format!("unknown gate {gate_name:?}"))?;
    let mut qubits = Vec::new();
    for q in obj.field("qubits")?.as_array("qubits")? {
        let q = q.as_usize("qubit operand")?;
        if q >= num_qubits {
            return Err(format!(
                "qubit {q} out of range for circuit with {num_qubits} qubits"
            ));
        }
        if qubits.contains(&q) {
            return Err(format!("repeated qubit operand {q} for gate {gate_name}"));
        }
        qubits.push(q);
    }
    if qubits.len() != gate.num_qubits() {
        return Err(format!(
            "gate {gate_name} expects {} qubit operands, got {}",
            gate.num_qubits(),
            qubits.len()
        ));
    }
    let mut params = Vec::new();
    for p in obj.field("params")?.as_array("params")? {
        let p_obj = p.as_object("parameter expression")?;
        let mut coeffs = Vec::new();
        for c in p_obj.field("coeffs")?.as_array("coeffs")? {
            coeffs.push(c.as_i32("parameter coefficient")?);
        }
        if coeffs.len() != num_params {
            return Err(format!(
                "parameter expression has {} coefficients, circuit has {num_params} parameters",
                coeffs.len()
            ));
        }
        let const_pi4 = p_obj.field("const_pi4")?.as_i32("const_pi4")?;
        params.push(ParamExpr::from_parts(coeffs, const_pi4));
    }
    if params.len() != gate.num_params() {
        return Err(format!(
            "gate {gate_name} expects {} parameters, got {}",
            gate.num_params(),
            params.len()
        ));
    }
    Ok(Instruction::new(gate, qubits, params))
}

// ---------------------------------------------------------------------------
// A minimal JSON value tree and recursive-descent parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Object(Vec<(String, JsonValue)>),
    Array(Vec<JsonValue>),
    String(String),
    Int(i64),
}

struct JsonObject<'a>(&'a [(String, JsonValue)]);

impl JsonValue {
    fn as_object(&self, what: &str) -> Result<JsonObject<'_>, String> {
        match self {
            JsonValue::Object(fields) => Ok(JsonObject(fields)),
            other => Err(format!("expected {what} to be an object, found {other:?}")),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[JsonValue], String> {
        match self {
            JsonValue::Array(items) => Ok(items),
            other => Err(format!("expected {what} to be an array, found {other:?}")),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            JsonValue::String(s) => Ok(s),
            other => Err(format!("expected {what} to be a string, found {other:?}")),
        }
    }

    fn as_usize(&self, what: &str) -> Result<usize, String> {
        match self {
            JsonValue::Int(n) if *n >= 0 => Ok(*n as usize),
            other => Err(format!(
                "expected {what} to be a non-negative integer, found {other:?}"
            )),
        }
    }

    fn as_i32(&self, what: &str) -> Result<i32, String> {
        match self {
            JsonValue::Int(n) => {
                i32::try_from(*n).map_err(|_| format!("{what} out of i32 range: {n}"))
            }
            other => Err(format!("expected {what} to be an integer, found {other:?}")),
        }
    }
}

impl JsonObject<'_> {
    fn field(&self, name: &str) -> Result<&JsonValue, String> {
        self.0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {name:?}"))
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<JsonValue, String> {
        let value = self.parse_value()?;
        self.skip_whitespace();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing characters at byte {}", self.pos));
        }
        Ok(value)
    }

    fn skip_whitespace(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(JsonValue::String(self.parse_string()?)),
            b'-' | b'0'..=b'9' => self.parse_int(),
            other => Err(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut segment_start = self.pos;
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_string())?;
            match b {
                b'"' | b'\\' => {
                    // `"` and `\` are ASCII, so the segment boundaries fall on
                    // UTF-8 character boundaries of the (already valid) input
                    // and multi-byte characters pass through losslessly.
                    out.push_str(
                        std::str::from_utf8(&self.bytes[segment_start..self.pos])
                            .expect("slices of a str between ASCII delimiters are valid UTF-8"),
                    );
                    self.pos += 1;
                    if b == b'"' {
                        return Ok(out);
                    }
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => {
                            return Err(format!("unsupported escape \\{}", other as char));
                        }
                    }
                    segment_start = self.pos;
                }
                _ => self.pos += 1,
            }
        }
    }

    fn parse_int(&mut self) -> Result<JsonValue, String> {
        self.skip_whitespace();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<i64>()
            .map(JsonValue::Int)
            .map_err(|_| format!("invalid integer {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_nesting_and_rejects_garbage() {
        let v = Parser::new(r#"{"a":[1,-2,{"b":"x"}],"c":3}"#)
            .parse_document()
            .unwrap();
        let obj = v.as_object("root").unwrap();
        assert_eq!(obj.field("c").unwrap().as_usize("c").unwrap(), 3);
        let arr = obj.field("a").unwrap().as_array("a").unwrap();
        assert_eq!(arr[1].as_i32("x").unwrap(), -2);
        assert!(Parser::new("not json").parse_document().is_err());
        assert!(Parser::new("{\"a\":1").parse_document().is_err());
        assert!(Parser::new("{\"a\":1} trailing").parse_document().is_err());
    }

    #[test]
    fn strings_preserve_escapes_and_non_ascii() {
        let v = Parser::new(r#"{"k":"π/4 → rz\n\"quoted\""}"#)
            .parse_document()
            .unwrap();
        let s = v
            .as_object("root")
            .unwrap()
            .field("k")
            .unwrap()
            .as_str("k")
            .unwrap()
            .to_string();
        assert_eq!(s, "π/4 → rz\n\"quoted\"");
        assert!(Parser::new(r#""bad \A escape""#).parse_document().is_err());
    }

    #[test]
    fn malformed_shapes_are_reported() {
        assert!(ecc_set_from_json("[1,2]").is_err());
        assert!(
            ecc_set_from_json(r#"{"num_qubits":1,"num_params":0,"eccs":[{"circuits":[]}]}"#)
                .is_err()
        );
        let bad_gate = r#"{"num_qubits":1,"num_params":0,"eccs":[{"circuits":[
            {"num_qubits":1,"num_params":0,"instructions":[{"gate":"nope","qubits":[0],"params":[]}]}
        ]}]}"#;
        assert!(ecc_set_from_json(bad_gate)
            .unwrap_err()
            .contains("unknown gate"));
        let bad_arity = r#"{"num_qubits":2,"num_params":0,"eccs":[{"circuits":[
            {"num_qubits":2,"num_params":0,"instructions":[{"gate":"cx","qubits":[0],"params":[]}]}
        ]}]}"#;
        assert!(ecc_set_from_json(bad_arity)
            .unwrap_err()
            .contains("qubit operands"));
    }
}
