//! Equivalent circuit classes (ECCs) and ECC sets (paper §2).
//!
//! An [`EccSet`] is the compact representation of a transformation library:
//! each class's representative pairs with every other member to yield the
//! optimizer's rewrite rules (see [`crate::transformations_from_ecc_set`]).
//! Sets serialize two ways — as interchange JSON ([`EccSet::to_json`],
//! [`EccSet::save`]) and as the compact binary `QTZL` artifacts of
//! [`crate::library`] that services load at startup.
//!
//! # Examples
//!
//! ```
//! use quartz_gen::{Ecc, EccSet};
//! use quartz_ir::{Circuit, Gate, Instruction};
//!
//! let mut hh = Circuit::new(1, 0);
//! hh.push(Instruction::new(Gate::H, vec![0], vec![]));
//! hh.push(Instruction::new(Gate::H, vec![0], vec![]));
//! let mut set = EccSet::new(1, 0);
//! set.eccs.push(Ecc::new(vec![hh, Circuit::new(1, 0)]));
//!
//! // The empty circuit is ≺-minimal, so it becomes the representative,
//! // and the two-member class represents 2·1 = 2 transformations.
//! assert!(set.eccs[0].representative().is_empty());
//! assert_eq!(set.num_transformations(), 2);
//! assert_eq!(EccSet::from_json(&set.to_json()).unwrap(), set);
//! ```

use quartz_ir::Circuit;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// An equivalence class of circuits. The first circuit is the representative
/// (the ≺-minimal member).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ecc {
    circuits: Vec<Circuit>,
}

impl Ecc {
    /// Creates a singleton ECC.
    pub fn singleton(circuit: Circuit) -> Self {
        Ecc {
            circuits: vec![circuit],
        }
    }

    /// Creates an ECC from a list of circuits, making the ≺-minimal member
    /// the representative.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty.
    pub fn new(mut circuits: Vec<Circuit>) -> Self {
        assert!(
            !circuits.is_empty(),
            "an ECC must contain at least one circuit"
        );
        circuits.sort_by(|a, b| a.precedence_cmp(b));
        Ecc { circuits }
    }

    /// The representative circuit (≺-minimal member).
    pub fn representative(&self) -> &Circuit {
        &self.circuits[0]
    }

    /// All member circuits, representative first.
    pub fn circuits(&self) -> &[Circuit] {
        &self.circuits
    }

    /// Number of member circuits.
    pub fn len(&self) -> usize {
        self.circuits.len()
    }

    /// Returns `true` if the ECC has exactly one member (and therefore yields
    /// no transformations).
    pub fn is_singleton(&self) -> bool {
        self.circuits.len() == 1
    }

    /// `is_empty` is never true for a constructed ECC; provided for
    /// completeness alongside [`Ecc::len`].
    pub fn is_empty(&self) -> bool {
        self.circuits.is_empty()
    }

    /// Number of transformations the ECC represents: x·(x−1).
    pub fn transformation_count(&self) -> usize {
        self.circuits.len() * (self.circuits.len().saturating_sub(1))
    }

    /// Adds a circuit, keeping the representative ≺-minimal.
    pub fn insert(&mut self, circuit: Circuit) {
        let pos = self
            .circuits
            .binary_search_by(|c| c.precedence_cmp(&circuit))
            .unwrap_or_else(|p| p);
        self.circuits.insert(pos, circuit);
    }

    /// Returns `true` if any member equals `circuit`.
    pub fn contains(&self, circuit: &Circuit) -> bool {
        self.circuits.contains(circuit)
    }
}

impl fmt::Display for Ecc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ECC with {} circuits:", self.len())?;
        for c in &self.circuits {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

/// A set of ECCs over a fixed number of qubits and parameters — the compact
/// representation of a transformation library.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EccSet {
    /// Number of qubits every member circuit is defined over.
    pub num_qubits: usize,
    /// Number of formal parameters.
    pub num_params: usize,
    /// The classes.
    pub eccs: Vec<Ecc>,
}

impl EccSet {
    /// Creates an empty ECC set.
    pub fn new(num_qubits: usize, num_params: usize) -> Self {
        EccSet {
            num_qubits,
            num_params,
            eccs: Vec::new(),
        }
    }

    /// Number of ECCs.
    pub fn len(&self) -> usize {
        self.eccs.len()
    }

    /// Returns `true` if the set has no ECCs.
    pub fn is_empty(&self) -> bool {
        self.eccs.is_empty()
    }

    /// Total number of circuits across all ECCs.
    pub fn total_circuits(&self) -> usize {
        self.eccs.iter().map(Ecc::len).sum()
    }

    /// Total number of transformations represented (|T| in the paper):
    /// Σ x·(x−1) over the ECCs.
    pub fn num_transformations(&self) -> usize {
        self.eccs.iter().map(Ecc::transformation_count).sum()
    }

    /// Drops singleton ECCs (they yield no transformations).
    pub fn without_singletons(&self) -> EccSet {
        EccSet {
            num_qubits: self.num_qubits,
            num_params: self.num_params,
            eccs: self
                .eccs
                .iter()
                .filter(|e| !e.is_singleton())
                .cloned()
                .collect(),
        }
    }

    /// Serializes to a JSON string (see `crate::json` for the format).
    pub fn to_json(&self) -> String {
        crate::json::ecc_set_to_json(self)
    }

    /// Deserializes from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or shape error on malformed
    /// input, with the line, column, and byte offset of the offending token.
    pub fn from_json(json: &str) -> Result<EccSet, String> {
        crate::json::ecc_set_from_json(json)
    }

    /// Writes the set as JSON to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors, with `path` included in the error message.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json()).map_err(|e| crate::path_io_error(path, e))
    }

    /// Reads a set from a JSON file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and reports malformed JSON; either way the
    /// error message names the offending path.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<EccSet> {
        let path = path.as_ref();
        let s = std::fs::read_to_string(path).map_err(|e| crate::path_io_error(path, e))?;
        EccSet::from_json(&s).map_err(|e| {
            crate::path_io_error(
                path,
                std::io::Error::new(std::io::ErrorKind::InvalidData, e),
            )
        })
    }
}

impl fmt::Display for EccSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ECC set over {} qubits, {} parameters: {} classes, {} circuits, {} transformations",
            self.num_qubits,
            self.num_params,
            self.len(),
            self.total_circuits(),
            self.num_transformations()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quartz_ir::{Gate, Instruction};

    fn single(gate: Gate, q: usize) -> Circuit {
        let mut c = Circuit::new(2, 0);
        c.push(Instruction::new(gate, vec![q], vec![]));
        c
    }

    #[test]
    fn representative_is_precedence_minimal() {
        let big = single(Gate::X, 0).appended(Instruction::new(Gate::X, vec![0], vec![]));
        let small = single(Gate::H, 1);
        let ecc = Ecc::new(vec![big.clone(), small.clone()]);
        assert_eq!(ecc.representative(), &small);
        assert_eq!(ecc.transformation_count(), 2);
        assert!(ecc.contains(&big));
    }

    #[test]
    fn insert_keeps_order() {
        let mut ecc = Ecc::singleton(single(Gate::X, 0));
        ecc.insert(single(Gate::H, 0));
        assert_eq!(ecc.representative(), &single(Gate::H, 0));
        assert_eq!(ecc.len(), 2);
        assert!(!ecc.is_singleton());
    }

    #[test]
    fn ecc_set_counts() {
        let mut set = EccSet::new(2, 0);
        set.eccs.push(Ecc::new(vec![
            single(Gate::H, 0),
            single(Gate::H, 1),
            single(Gate::X, 0),
        ]));
        set.eccs.push(Ecc::singleton(single(Gate::X, 1)));
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_circuits(), 4);
        assert_eq!(set.num_transformations(), 6);
        assert_eq!(set.without_singletons().len(), 1);
    }

    #[test]
    fn json_round_trip() {
        let mut set = EccSet::new(2, 1);
        set.eccs
            .push(Ecc::new(vec![single(Gate::H, 0), single(Gate::X, 0)]));
        let json = set.to_json();
        let back = EccSet::from_json(&json).unwrap();
        assert_eq!(set, back);
        assert!(EccSet::from_json("not json").is_err());
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join("quartz_ecc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("set.json");
        let mut set = EccSet::new(1, 0);
        set.eccs.push(Ecc::new(vec![single(Gate::H, 0)]));
        set.save(&path).unwrap();
        let back = EccSet::load(&path).unwrap();
        assert_eq!(set, back);
    }

    #[test]
    fn save_and_load_errors_name_the_path() {
        let missing = std::env::temp_dir().join("quartz_ecc_test_no_such_file.json");
        let err = EccSet::load(&missing).unwrap_err();
        assert!(
            err.to_string()
                .contains("quartz_ecc_test_no_such_file.json"),
            "load error must name the path: {err}"
        );

        let bad = std::env::temp_dir().join("quartz_ecc_test_bad.json");
        std::fs::write(&bad, "{ not json").unwrap();
        let err = EccSet::load(&bad).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("quartz_ecc_test_bad.json"));

        let set = EccSet::new(1, 0);
        let err = set
            .save(std::env::temp_dir().join("quartz_no_such_dir/set.json"))
            .unwrap_err();
        assert!(err.to_string().contains("quartz_no_such_dir"));
    }
}
