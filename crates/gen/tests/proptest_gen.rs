//! Property-based tests for the persistence layer: random ECC sets must
//! survive the JSON codec and the binary `QTZL` artifact format losslessly,
//! and artifact validation must reject every corruption.

use proptest::prelude::*;
use quartz_gen::{
    checksum64, Ecc, EccSet, LazyLibrary, Library, TransformationIndex, FORMAT_VERSION_V2,
    HEADER_LEN,
};
use quartz_ir::{Circuit, Gate, Instruction, ParamExpr};

/// Strategy producing a random instruction over `nq` qubits and `m ≥ 1`
/// formal parameters, mixing constant and parameter-dependent angles.
fn arb_instruction(nq: usize, m: usize) -> impl Strategy<Value = Instruction> {
    let gates = prop_oneof![
        Just(Gate::H),
        Just(Gate::X),
        Just(Gate::T),
        Just(Gate::Tdg),
        Just(Gate::Rz),
        Just(Gate::Cnot),
        Just(Gate::Cz),
    ];
    (gates, 0..nq, 0..nq.max(2), -6i32..=6, 0u32..2).prop_filter_map(
        "operands must be distinct",
        move |(gate, q0, q1_raw, quarters, symbolic)| {
            let symbolic = symbolic == 1;
            let q1 = q1_raw % nq;
            let params = if gate.num_params() == 1 {
                if symbolic {
                    vec![ParamExpr::var(0, m)]
                } else {
                    vec![ParamExpr::constant_pi4_with_params(quarters, m)]
                }
            } else {
                vec![]
            };
            match gate.num_qubits() {
                1 => Some(Instruction::new(gate, vec![q0], params)),
                2 if q0 != q1 => Some(Instruction::new(gate, vec![q0, q1], vec![])),
                _ => None,
            }
        },
    )
}

fn arb_circuit(nq: usize, m: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_instruction(nq, m), 0..max_len).prop_map(move |instrs| {
        let mut c = Circuit::new(nq, m);
        for i in instrs {
            c.push(i);
        }
        c
    })
}

/// A random (not necessarily semantically sound) ECC set: the persistence
/// layer must round-trip *any* structurally valid set, not just verified
/// ones.
fn arb_ecc_set(nq: usize, m: usize) -> impl Strategy<Value = EccSet> {
    prop::collection::vec(prop::collection::vec(arb_circuit(nq, m, 6), 1..4), 0..5).prop_map(
        move |classes| {
            let mut set = EccSet::new(nq, m);
            for circuits in classes {
                set.eccs.push(Ecc::new(circuits));
            }
            set
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn json_round_trips_losslessly(set in arb_ecc_set(2, 1)) {
        let json = set.to_json();
        let back = EccSet::from_json(&json).unwrap();
        prop_assert_eq!(back, set);
    }

    #[test]
    fn binary_artifacts_round_trip_losslessly(set in arb_ecc_set(2, 1), with_index_raw in 0u32..2) {
        let with_index = with_index_raw == 1;
        let library = Library::new("Nam", set.clone(), with_index);
        let bytes = library.to_bytes();
        let back = Library::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.ecc_set(), &set);
        prop_assert_eq!(back.header(), library.header());
        prop_assert_eq!(back.index().is_some(), with_index);
        // Re-encoding is byte-identical (what `quartz-lib verify-checksum
        // --deep` relies on).
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn loaded_index_reproduces_the_freshly_built_index(set in arb_ecc_set(2, 1)) {
        let library = Library::new("Nam", set.clone(), true);
        let loaded = Library::from_bytes(&library.to_bytes()).unwrap();
        let loaded_index = loaded.index().unwrap();
        let fresh = TransformationIndex::new(
            quartz_gen::transformations_from_ecc_set(&set, true),
        );
        prop_assert_eq!(loaded_index.len(), fresh.len());
        prop_assert_eq!(loaded_index.transformations(), fresh.transformations());
        prop_assert_eq!(loaded_index.anchor_buckets(), fresh.anchor_buckets());
    }

    #[test]
    fn every_single_byte_flip_is_detected(set in arb_ecc_set(2, 1), seed in 0u64..u64::MAX) {
        // Any one-byte corruption — header *or* body — must be rejected:
        // the artifact checksum covers the header prefix chained into the
        // body, and a flip inside the checksum field itself mismatches the
        // recomputation.
        let bytes = Library::new("Nam", set, true).to_bytes();
        let pos = (seed % bytes.len() as u64) as usize;
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x01;
        prop_assert!(
            Library::from_bytes(&corrupt).is_err(),
            "flipping byte {pos} of {} went undetected",
            bytes.len()
        );
        // FNV-1a's per-byte step is a bijection of the running state, so a
        // single flipped byte always changes the final checksum.
        prop_assert_ne!(checksum64(&bytes), checksum64(&corrupt));
    }

    #[test]
    fn v2_artifacts_round_trip_losslessly(set in arb_ecc_set(2, 1), with_index_raw in 0u32..2) {
        let with_index = with_index_raw == 1;
        let library = Library::with_format("Nam", set.clone(), with_index, FORMAT_VERSION_V2);
        let bytes = library.to_bytes();
        // Eagerly...
        let back = Library::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.ecc_set(), &set);
        prop_assert_eq!(back.header(), library.header());
        prop_assert_eq!(back.to_bytes(), bytes);
        // ...and through the lazy handle, class by class.
        let lazy = LazyLibrary::from_bytes(bytes).unwrap();
        prop_assert_eq!(&lazy.ecc_set().unwrap(), &set);
        prop_assert_eq!(lazy.index().unwrap().is_some(), with_index);
    }

    /// The v2 corruption matrix: every single-byte flip is caught either at
    /// open (header/class-table region, sealed by the artifact checksum) or
    /// at the first lazy decode of exactly the section the flip landed in —
    /// the touched class, or the index. Untouched classes still decode.
    #[test]
    fn every_v2_byte_flip_is_detected_at_open_or_first_touch(
        set in arb_ecc_set(2, 1),
        seed in 0u64..u64::MAX,
    ) {
        let library = Library::with_format("Nam", set, true, FORMAT_VERSION_V2);
        let bytes = library.to_bytes();
        let pos = (seed % bytes.len() as u64) as usize;
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x01;

        // The eager decoder verifies everything up front.
        prop_assert!(
            Library::from_bytes(&corrupt).is_err(),
            "flipping byte {pos} of {} went undetected eagerly",
            bytes.len()
        );

        // The lazy path: locate the section the flip landed in.
        let table = LazyLibrary::from_bytes(bytes.clone())
            .unwrap()
            .class_table()
            .expect("v2 artifacts carry a class table")
            .clone();
        let sections_start = HEADER_LEN + table.encoded_len();
        let ecc_len: usize = table.classes.iter().map(|e| e.len as usize).sum();

        match LazyLibrary::from_bytes(corrupt) {
            Err(_) => prop_assert!(
                pos < sections_start,
                "open rejected a flip at {pos}, outside the checksum-sealed \
                 prefix of {sections_start} bytes"
            ),
            Ok(lazy) => {
                prop_assert!(
                    pos >= sections_start,
                    "open accepted a flip at {pos}, inside the checksum-sealed \
                     prefix of {sections_start} bytes"
                );
                if pos < sections_start + ecc_len {
                    let touched = (0..table.classes.len())
                        .find(|&i| {
                            let r = table.class_range(i);
                            (sections_start + r.start..sections_start + r.end).contains(&pos)
                        })
                        .expect("the flip is inside some class payload");
                    for i in 0..table.classes.len() {
                        if i == touched {
                            prop_assert!(
                                lazy.class(i).is_err(),
                                "first decode of touched class {i} missed the flip at {pos}"
                            );
                        } else {
                            prop_assert!(
                                lazy.class(i).is_ok(),
                                "untouched class {i} failed to decode"
                            );
                        }
                    }
                } else {
                    prop_assert!(
                        lazy.index().is_err(),
                        "first index decode missed the flip at {pos}"
                    );
                    // Classes are untouched and still decode.
                    for i in 0..table.classes.len() {
                        prop_assert!(lazy.class(i).is_ok());
                    }
                }
                // The digest-only sweep (what `registry get` and deep
                // verification run) catches it regardless of which section.
                prop_assert!(lazy.verify_all().is_err());
            }
        }
    }
}
