//! Adversarial tests for the v2 lazy-loading path (DESIGN.md §12):
//! truncation at every section boundary must surface as a *typed*
//! [`LibraryError`] at open, corruption in a class the reader never touches
//! must still be caught by the digest sweep, and I/O failures must name the
//! offending path.

use quartz_gen::{
    Ecc, EccSet, LazyLibrary, Library, LibraryError, Registry, FORMAT_VERSION_V2, HEADER_LEN,
};
use quartz_ir::{Circuit, Gate, Instruction};

fn pair(gate: Gate, qubits: &[usize]) -> Circuit {
    let mut c = Circuit::new(2, 0);
    c.push(Instruction::new(gate, qubits.to_vec(), vec![]));
    c.push(Instruction::new(gate, qubits.to_vec(), vec![]));
    c
}

/// Three classes with distinct anchors, packed as a v2 artifact with a
/// prebuilt index.
fn sample_v2() -> Library {
    let mut set = EccSet::new(2, 0);
    set.eccs
        .push(Ecc::new(vec![pair(Gate::H, &[0]), Circuit::new(2, 0)]));
    set.eccs
        .push(Ecc::new(vec![pair(Gate::X, &[1]), Circuit::new(2, 0)]));
    set.eccs.push(Ecc::new(vec![
        pair(Gate::Cnot, &[0, 1]),
        Circuit::new(2, 0),
    ]));
    Library::with_format("Nam", set, true, FORMAT_VERSION_V2)
}

#[test]
fn truncation_at_every_section_boundary_is_a_typed_error() {
    let library = sample_v2();
    let bytes = library.to_bytes();
    let lazy = LazyLibrary::from_bytes(bytes.clone()).unwrap();
    let table = lazy.class_table().unwrap();
    let sections_start = HEADER_LEN + table.encoded_len();
    let ecc_len = library.header().ecc_len as usize;

    let mut boundaries = vec![
        0,
        1,
        HEADER_LEN - 1,
        HEADER_LEN,
        HEADER_LEN + 31,
        HEADER_LEN + 32,
        sections_start - 1,
        sections_start,
        sections_start + ecc_len - 1,
        sections_start + ecc_len,
        bytes.len() - 1,
    ];
    boundaries.dedup();

    for cut in boundaries {
        assert!(cut < bytes.len(), "test boundary {cut} is not a truncation");
        let truncated = bytes[..cut].to_vec();
        // The lazy open validates lengths before trusting any offset: every
        // truncation is a typed Truncated error, never a panic, a silent
        // partial library, or (on the mmap path) a fault at first touch.
        match LazyLibrary::from_bytes(truncated.clone()) {
            Err(LibraryError::Truncated { .. }) => {}
            // Cuts inside the 4-byte magic can't even prove the file is ours.
            Err(LibraryError::NotALibrary) if cut < 4 => {}
            Err(other) => panic!("truncation at {cut} gave a non-truncation error: {other}"),
            Ok(_) => panic!("truncation at {cut} opened successfully"),
        }
        // The eager decoder rejects it too.
        assert!(
            Library::from_bytes(&truncated).is_err(),
            "eager decode accepted a truncation at {cut}"
        );
    }
}

#[test]
fn corruption_in_an_untouched_class_is_caught_by_the_digest_sweep() {
    let library = sample_v2();
    let bytes = library.to_bytes();
    let lazy = LazyLibrary::from_bytes(bytes.clone()).unwrap();
    let table = lazy.class_table().unwrap().clone();
    let sections_start = HEADER_LEN + table.encoded_len();

    // Flip one byte inside class 2's payload.
    let victim = 2usize;
    let range = table.class_range(victim);
    let mut corrupt = bytes;
    corrupt[sections_start + range.start] ^= 0x01;

    // Open succeeds (the flip is outside the checksum-sealed prefix), and a
    // reader that only ever touches classes 0 and 1 — or the index — never
    // trips over it...
    let lazy = LazyLibrary::from_bytes(corrupt).unwrap();
    assert!(lazy.class(0).is_ok());
    assert!(lazy.class(1).is_ok());
    assert!(lazy.index().is_ok());
    assert_eq!(lazy.decoded_classes(), 2);

    // ...which is exactly why `verify_all` (run by `registry get` and
    // `verify-checksum --deep`) sweeps every digest without decoding:
    match lazy.verify_all() {
        Err(LibraryError::ClassDigestMismatch { class, .. }) => assert_eq!(class, victim),
        other => panic!("digest sweep missed the untouched corrupt class: {other:?}"),
    }
    // And a first touch of the victim class reports the same.
    assert!(matches!(
        lazy.class(victim),
        Err(LibraryError::ClassDigestMismatch { class, .. }) if class == victim
    ));
}

#[test]
fn inspect_prints_the_format_version_for_both_container_versions() {
    let dir = std::env::temp_dir().join(format!("quartz_inspect_fmt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let v2 = sample_v2();
    let v1 = Library::new("Nam", v2.ecc_set().clone(), true);
    for (library, expected) in [
        (&v1, "format version:     1"),
        (&v2, "format version:     2"),
    ] {
        let path = dir.join(format!("v{}.qtzl", library.header().format_version));
        library.save(&path).unwrap();
        let output = std::process::Command::new(env!("CARGO_BIN_EXE_quartz-lib"))
            .args(["inspect", path.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(output.status.success(), "inspect failed: {output:?}");
        let stdout = String::from_utf8(output.stdout).unwrap();
        assert!(
            stdout.contains(expected),
            "inspect output lacks '{expected}':\n{stdout}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn io_errors_name_the_offending_path() {
    let dir = std::env::temp_dir().join(format!("quartz_lazy_io_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // A missing artifact: the Io error's Display names the path.
    let missing = dir.join("not_there.qtzl");
    let err = LazyLibrary::open(&missing).unwrap_err();
    assert!(matches!(err, LibraryError::Io(_)), "{err:?}");
    assert!(
        err.to_string().contains("not_there.qtzl"),
        "I/O error must name the offending path, got: {err}"
    );

    // A registry root that collides with an existing file: the layout
    // creation fails with the path in the message.
    let clobbered = dir.join("registry_root");
    std::fs::write(&clobbered, b"in the way").unwrap();
    let err = Registry::open(&clobbered).unwrap_err();
    assert!(matches!(err, LibraryError::Io(_)), "{err:?}");
    assert!(
        err.to_string().contains("registry_root"),
        "registry I/O error must name the offending path, got: {err}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
