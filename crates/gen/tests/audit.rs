//! Integration tests for the `quartz-audit` static analyzer (DESIGN.md
//! §11): semantic re-verification, the structural lints, the
//! content-addressed verified-cache, and the sidecar stamp format.

use quartz_gen::{
    audit::class_digest, AuditConfig, AuditStamp, Auditor, Ecc, EccSet, Library, RuleCode,
    Severity, GENERATOR_VERSION,
};
use quartz_ir::{Circuit, Gate, Instruction, ParamExpr};
use quartz_verify::VerifierConfig;
use std::path::PathBuf;

fn instr(gate: Gate, qubits: &[usize]) -> Instruction {
    Instruction::new(gate, qubits.to_vec(), vec![])
}

/// A minimal sound set over Nam gates: HH = identity. Audits clean (no
/// errors, no warnings).
fn clean_set() -> EccSet {
    let mut hh = Circuit::new(2, 0);
    hh.push(instr(Gate::H, &[0]));
    hh.push(instr(Gate::H, &[0]));
    let mut set = EccSet::new(2, 0);
    set.eccs.push(Ecc::new(vec![hh, Circuit::new(2, 0)]));
    set
}

fn codes(report: &quartz_gen::AuditReport) -> Vec<&'static str> {
    report.diagnostics.iter().map(|d| d.rule.code()).collect()
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("quartz_audit_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn clean_set_audits_clean() {
    let report = Auditor::default().audit_set(&clean_set(), "Nam", None, None);
    assert_eq!(report.classes, 1);
    assert_eq!(report.cache_hits, 0);
    assert!(report.is_clean(), "unexpected findings: {report}");
    assert_eq!(report.warnings(), 0);
    assert_eq!(report.class_digests.len(), 1);
}

#[test]
fn stamp_json_round_trips() {
    let report = Auditor::default().audit_set(&clean_set(), "Nam", None, None);
    let stamp = report.stamp().expect("clean audit produces a stamp");
    let back = AuditStamp::parse(&stamp.to_json()).expect("stamp JSON parses");
    assert_eq!(back, stamp);
    assert!(back.certifies(report.artifact_checksum, report.verifier_digest));
}

#[test]
fn second_audit_hits_the_verified_cache_for_every_class() {
    let set = clean_set();
    let auditor = Auditor::default();
    let first = auditor.audit_set(&set, "Nam", None, None);
    let stamp = first.stamp().unwrap();
    let second = auditor.audit_set(&set, "Nam", None, Some(&stamp));
    assert_eq!(second.cache_hits, second.classes);
    assert!(second.is_clean());
    // The cached run certifies the same classes the full run did.
    assert_eq!(second.class_digests, first.class_digests);
}

#[test]
fn class_digest_is_keyed_on_verifier_configuration() {
    let set = clean_set();
    let default_digest = VerifierConfig::default().digest();
    let other_digest = VerifierConfig {
        max_phase_coeff: 2,
        ..VerifierConfig::default()
    }
    .digest();
    assert_ne!(default_digest, other_digest);
    assert_ne!(
        class_digest(&set.eccs[0], set.num_qubits, set.num_params, default_digest),
        class_digest(&set.eccs[0], set.num_qubits, set.num_params, other_digest),
        "a stamp written under one verifier configuration must miss under another"
    );
}

#[test]
fn semantic_corruption_is_caught_with_a_located_diagnostic() {
    // CNOT(0,1) and CNOT(1,0) are inequivalent; the class claims otherwise.
    let mut set = EccSet::new(2, 0);
    set.eccs.push(Ecc::new(vec![
        {
            let mut c = Circuit::new(2, 0);
            c.push(instr(Gate::Cnot, &[0, 1]));
            c
        },
        {
            let mut c = Circuit::new(2, 0);
            c.push(instr(Gate::Cnot, &[1, 0]));
            c
        },
    ]));
    let report = Auditor::default().audit_set(&set, "Nam", None, None);
    assert!(!report.is_clean());
    let e001 = report
        .diagnostics
        .iter()
        .find(|d| d.rule == RuleCode::SemanticNotEquivalent)
        .expect("the corrupted member is flagged");
    assert_eq!(e001.severity, Severity::Error);
    assert_eq!(e001.location.to_string(), "ecc 0 / circuit 1");
    // An unsound class never certifies into a stamp.
    assert!(report.stamp().is_none());
    assert!(report.class_digests.is_empty());
    // The machine-readable report names the rule.
    assert!(report.to_json().contains("\"E001\""));
}

#[test]
fn gate_set_violation_is_flagged_per_instruction() {
    // Ccx is not a Nam gate — but it is still simulable, so the semantic
    // pass runs and the class itself is sound (CCX·CCX = I).
    let mut ccxccx = Circuit::new(3, 0);
    ccxccx.push(instr(Gate::Ccx, &[0, 1, 2]));
    ccxccx.push(instr(Gate::Ccx, &[0, 1, 2]));
    let mut set = EccSet::new(3, 0);
    set.eccs.push(Ecc::new(vec![ccxccx, Circuit::new(3, 0)]));
    let report = Auditor::default().audit_set(&set, "Nam", None, None);
    let violations: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == RuleCode::GateSetViolation)
        .collect();
    assert_eq!(violations.len(), 2, "{report}");
    // The empty circuit sorts first, so the CCX pair is circuit 1.
    assert_eq!(
        violations[0].location.to_string(),
        "ecc 0 / circuit 1 / instruction 0"
    );
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.rule == RuleCode::SemanticNotEquivalent));
}

#[test]
fn unknown_gate_set_name_downgrades_membership_lint_to_a_warning() {
    let report = Auditor::default().audit_set(&clean_set(), "frobnicate", None, None);
    assert!(report.is_clean());
    assert_eq!(codes(&report), vec!["W105"]);
}

#[test]
fn malformed_instruction_is_flagged_and_skips_semantic_verification() {
    // An H with two qubit operands cannot be simulated; the shape lint must
    // catch it *and* fence the verifier off the class (no panic, no E002).
    let mut bad = Circuit::new(2, 0);
    bad.push(Instruction {
        gate: Gate::H,
        qubits: vec![0, 1],
        params: vec![],
    });
    let mut set = EccSet::new(2, 0);
    set.eccs.push(Ecc::new(vec![bad, Circuit::new(2, 0)]));
    let report = Auditor::default().audit_set(&set, "Nam", None, None);
    let e004 = report
        .diagnostics
        .iter()
        .find(|d| d.rule == RuleCode::MalformedInstruction)
        .expect("shape violation is flagged");
    assert!(e004.location.to_string().starts_with("ecc 0 / circuit"));
    assert!(!report.diagnostics.iter().any(|d| matches!(
        d.rule,
        RuleCode::SemanticNotEquivalent | RuleCode::SemanticQueryError
    )));
    // A class the verifier never saw must not certify.
    assert!(report.class_digests.is_empty());
}

#[test]
fn dangling_parameter_slot_is_flagged() {
    // The expression references formal slot p2 in a 2-parameter set.
    let mut c = Circuit::new(1, 2);
    c.push(Instruction {
        gate: Gate::Rz,
        qubits: vec![0],
        params: vec![ParamExpr::from_parts(vec![0, 0, 5], 0)],
    });
    let mut set = EccSet::new(1, 2);
    set.eccs.push(Ecc::new(vec![c, Circuit::new(1, 2)]));
    let report = Auditor::default().audit_set(&set, "Nam", None, None);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule == RuleCode::DanglingParamIndex));
    assert!(report.class_digests.is_empty());
}

#[test]
fn duplicate_and_noop_and_noncanonical_lints_fire() {
    let mut h01 = Circuit::new(2, 0);
    h01.push(instr(Gate::H, &[0]));
    h01.push(instr(Gate::H, &[1]));
    let mut h10 = Circuit::new(2, 0);
    h10.push(instr(Gate::H, &[1]));
    h10.push(instr(Gate::H, &[0]));

    let mut hh = Circuit::new(2, 0);
    hh.push(instr(Gate::H, &[0]));
    hh.push(instr(Gate::H, &[0]));

    let mut set = EccSet::new(2, 0);
    // Class 0: the same circuit stored twice up to commutation — one copy
    // non-canonical — induces a self-rewrite (W102) and a non-canonical
    // pattern (W103).
    set.eccs.push(Ecc::new(vec![h01, h10]));
    // Classes 1 and 2 are identical, so class 2 re-induces class 1's
    // transformations (W101).
    set.eccs
        .push(Ecc::new(vec![hh.clone(), Circuit::new(2, 0)]));
    set.eccs.push(Ecc::new(vec![hh, Circuit::new(2, 0)]));

    let report = Auditor::default().audit_set(&set, "Nam", None, None);
    assert!(report.is_clean(), "only warnings expected: {report}");
    let fired: std::collections::HashSet<&str> = codes(&report).into_iter().collect();
    assert!(fired.contains("W101"), "{report}");
    assert!(fired.contains("W102"), "{report}");
    assert!(fired.contains("W103"), "{report}");
}

#[test]
fn dead_rules_under_every_additive_model_are_flagged() {
    // T ≡ CNOT · T⁹ · CNOT (T⁸ = I exactly, and T on the control commutes
    // with CNOT). The rep→member direction strictly increases gate count
    // (+10), multi-qubit count (+2), and T count (+8) — unreachable under
    // any additive model with γ = 1.0001 until best cost exceeds 10 000.
    let mut rep = Circuit::new(2, 0);
    rep.push(instr(Gate::T, &[0]));
    let mut member = Circuit::new(2, 0);
    member.push(instr(Gate::Cnot, &[0, 1]));
    for _ in 0..9 {
        member.push(instr(Gate::T, &[0]));
    }
    member.push(instr(Gate::Cnot, &[0, 1]));
    let mut set = EccSet::new(2, 0);
    set.eccs.push(Ecc::new(vec![rep, member]));

    let report = Auditor::default().audit_set(&set, "CliffordT", None, None);
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error),
        "the class is semantically sound: {report}"
    );
    let dead: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == RuleCode::DeadRule)
        .collect();
    assert_eq!(dead.len(), 1, "{report}");
    assert!(dead[0].message.contains("10000"), "{}", dead[0].message);
}

#[test]
fn stale_prebuilt_index_is_flagged() {
    let set = clean_set();
    // An index built from a *different* set: one extra class.
    let mut other = clean_set();
    let mut xx = Circuit::new(2, 0);
    xx.push(instr(Gate::X, &[0]));
    xx.push(instr(Gate::X, &[0]));
    other.eccs.push(Ecc::new(vec![xx, Circuit::new(2, 0)]));
    let stale = quartz_gen::TransformationIndex::new(quartz_gen::transformations_from_ecc_set(
        &other, true,
    ));
    let report = Auditor::default().audit_set(&set, "Nam", Some(&stale), None);
    let e006 = report
        .diagnostics
        .iter()
        .find(|d| d.rule == RuleCode::StaleIndex)
        .expect("stale index is flagged");
    assert_eq!(e006.severity, Severity::Error);
    assert_eq!(e006.location.to_string(), "artifact");
}

#[test]
fn artifact_audit_end_to_end_with_sidecar_cache() {
    let path = temp_path("roundtrip.qtzl");
    Library::new("Nam", clean_set(), true).save(&path).unwrap();
    let _ = std::fs::remove_file(AuditStamp::sidecar_path(&path));

    let auditor = Auditor::new(AuditConfig::default());
    let first = auditor.audit_artifact(&path, true).unwrap();
    assert!(first.is_clean(), "{first}");
    assert_eq!(first.cache_hits, 0);
    assert_eq!(first.generator_version, GENERATOR_VERSION);

    first.stamp().unwrap().save_for(&path).unwrap();
    let second = auditor.audit_artifact(&path, true).unwrap();
    assert_eq!(second.cache_hits, second.classes);

    // Re-packing different content under the same path makes the stamp
    // stale: it certifies the old checksum, so the cache is not consulted.
    let mut grown = clean_set();
    let mut xx = Circuit::new(2, 0);
    xx.push(instr(Gate::X, &[0]));
    xx.push(instr(Gate::X, &[0]));
    grown.eccs.push(Ecc::new(vec![xx, Circuit::new(2, 0)]));
    Library::new("Nam", grown, true).save(&path).unwrap();
    let third = auditor.audit_artifact(&path, true).unwrap();
    assert_eq!(third.cache_hits, 0);
    assert!(third.is_clean(), "{third}");
    assert_eq!(third.classes, 2);
}

#[test]
fn loading_a_garbled_sidecar_is_a_cache_miss_not_an_error() {
    let path = temp_path("garbled.qtzl");
    Library::new("Nam", clean_set(), true).save(&path).unwrap();
    std::fs::write(AuditStamp::sidecar_path(&path), b"{ not json ]").unwrap();
    let report = Auditor::default().audit_artifact(&path, true).unwrap();
    assert_eq!(report.cache_hits, 0);
    assert!(report.is_clean());
}
