//! Concurrency battery for the content-addressed registry (DESIGN.md
//! §12.4): racing publishers must converge on one intact winner, and
//! readers racing publishers and the garbage collector must only ever see
//! a key as *absent* or *fully intact* — never torn.

use quartz_gen::{Ecc, EccSet, Library, LibraryError, Registry, RegistryKey, FORMAT_VERSION_V2};
use quartz_ir::{Circuit, Gate, Instruction};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn pair(gate: Gate, qubits: &[usize]) -> Circuit {
    let mut c = Circuit::new(2, 0);
    c.push(Instruction::new(gate, qubits.to_vec(), vec![]));
    c.push(Instruction::new(gate, qubits.to_vec(), vec![]));
    c
}

/// A small Nam-legal v2 library; `with_index` toggles the trailing index
/// section, which changes the artifact checksum but not its registry key.
fn sample_library(with_index: bool) -> Library {
    let mut set = EccSet::new(2, 0);
    set.eccs
        .push(Ecc::new(vec![pair(Gate::H, &[0]), Circuit::new(2, 0)]));
    set.eccs.push(Ecc::new(vec![
        pair(Gate::Cnot, &[0, 1]),
        Circuit::new(2, 0),
    ]));
    Library::with_format("Nam", set, with_index, FORMAT_VERSION_V2)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("quartz_registry_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Reads the blobs a `get` resolved to, tolerating a concurrent gc sweep
/// between the resolve and the read (`None` = vanished, treat as absent).
fn read_blobs(paths: &[PathBuf]) -> Option<Vec<Vec<u8>>> {
    paths.iter().map(|p| std::fs::read(p).ok()).collect()
}

#[test]
fn racing_adds_converge_on_one_winner_byte_identical_to_a_solo_add() {
    let dir = temp_dir("race_add");
    let library = sample_library(true);
    let artifact = dir.join("input.qtzl");
    library.save(&artifact).unwrap();

    // The reference: a solo add into its own registry.
    let solo_root = dir.join("solo");
    let solo = Registry::open(&solo_root).unwrap();
    let key = solo.add(std::slice::from_ref(&artifact)).unwrap();
    let solo_blobs: Vec<Vec<u8>> =
        read_blobs(&solo.get(&key).unwrap()).expect("solo blobs are stable");

    // The race: 8 threads publishing the same artifact into one registry.
    let contended_root = dir.join("contended");
    Registry::open(&contended_root).unwrap();
    let results: Vec<RegistryKey> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let root = contended_root.clone();
                let artifact = artifact.clone();
                scope.spawn(move || Registry::open(root).unwrap().add(&[artifact]).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for k in &results {
        assert_eq!(k, &key, "every racer derived the same content key");
    }

    // One intact winner, byte-identical to the solo publish.
    let contended = Registry::open(&contended_root).unwrap();
    let raced_blobs = read_blobs(&contended.get(&key).unwrap()).expect("winner blobs are stable");
    assert_eq!(raced_blobs, solo_blobs, "raced publish is torn or diverged");
    assert_eq!(contended.list().unwrap().len(), 1);

    // No torn staging files survive the race: gc sweeps tmp/ only.
    let leftover = std::fs::read_dir(contended_root.join("tmp"))
        .unwrap()
        .count();
    assert_eq!(leftover, 0, "{leftover} torn staging file(s) left behind");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_gets_during_adds_and_gcs_see_absent_or_intact_only() {
    let dir = temp_dir("race_get");
    // Two versions under the SAME key (the index toggle changes only the
    // checksum): republishing retargets the manifest and strands the old
    // blob for gc, so readers race both the publish and the sweep.
    let version_a = sample_library(false);
    let version_b = sample_library(true);
    let key = RegistryKey::from_header(version_a.header());
    assert_eq!(key, RegistryKey::from_header(version_b.header()));
    let bytes_a = version_a.to_bytes();
    let bytes_b = version_b.to_bytes();
    assert_ne!(bytes_a, bytes_b);
    let path_a = dir.join("a.qtzl");
    let path_b = dir.join("b.qtzl");
    version_a.save(&path_a).unwrap();
    version_b.save(&path_b).unwrap();

    let root = dir.join("registry");
    Registry::open(&root).unwrap();
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // The writer: flip between the two versions, sweeping after each
        // publish so the superseded blob actually vanishes mid-run.
        let writer_root = root.clone();
        let writer_done = Arc::clone(&done);
        let (path_a, path_b) = (path_a.clone(), path_b.clone());
        scope.spawn(move || {
            let registry = Registry::open(writer_root).unwrap();
            for round in 0..24 {
                let src = if round % 2 == 0 { &path_a } else { &path_b };
                registry.add(std::slice::from_ref(src)).unwrap();
                registry.gc().unwrap();
            }
            writer_done.store(true, Ordering::Release);
        });

        // The readers: every successful resolve must be one of the two
        // intact versions, bit-for-bit. A miss (NotFound) is the only
        // acceptable failure — that's "absent", racing the sweep.
        for _ in 0..3 {
            let reader_root = root.clone();
            let reader_done = Arc::clone(&done);
            let (bytes_a, bytes_b) = (bytes_a.clone(), bytes_b.clone());
            let reader_key = key.clone();
            scope.spawn(move || {
                let registry = Registry::open(reader_root).unwrap();
                let mut intact = 0usize;
                while !reader_done.load(Ordering::Acquire) {
                    match registry.get(&reader_key) {
                        Ok(paths) => {
                            if let Some(blobs) = read_blobs(&paths) {
                                assert_eq!(blobs.len(), 1);
                                assert!(
                                    blobs[0] == bytes_a || blobs[0] == bytes_b,
                                    "reader observed a torn artifact ({} bytes)",
                                    blobs[0].len()
                                );
                                intact += 1;
                            }
                        }
                        Err(LibraryError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
                        Err(e) => panic!("reader saw a non-absent failure: {e}"),
                    }
                }
                assert!(intact > 0, "reader never observed an intact artifact");
            });
        }
    });

    let _ = std::fs::remove_dir_all(&dir);
}
