//! # Quartz (Rust reproduction)
//!
//! A from-scratch Rust implementation of **Quartz: Superoptimization of
//! Quantum Circuits** (PLDI 2022). Quartz automatically *generates* and
//! *verifies* circuit transformations for an arbitrary quantum gate set, and
//! then optimizes input circuits with a cost-based backtracking search over
//! the verified transformations.
//!
//! This facade crate re-exports the workspace crates:
//!
//! | Module | Crate | Paper section |
//! |---|---|---|
//! | [`math`] | `quartz-math` | exact arithmetic substrate (replaces Z3) |
//! | [`ir`] | `quartz-ir` | §2 — symbolic circuits, gate sets, Σ |
//! | [`verify`] | `quartz-verify` | §4 — equivalence verifier |
//! | [`gen`] | `quartz-gen` | §3, §5 — RepGen and pruning |
//! | [`opt`] | `quartz-opt` | §6, §7.1 — optimizer and preprocessing |
//! | [`circuits`] | `quartz-circuits` | §7.2 — benchmark suite |
//! | [`serve`] | `quartz-serve` | optimization-as-a-service daemon (DESIGN.md §10) |
//!
//! # Quickstart
//!
//! ```
//! use quartz::gen::{GenConfig, Generator};
//! use quartz::ir::{Circuit, Gate, GateSet, Instruction};
//! use quartz::opt::{Optimizer, SearchConfig};
//! use std::time::Duration;
//!
//! // 1. Generate and verify transformations for the Nam gate set.
//! let (ecc_set, _) = Generator::new(GateSet::nam(), GenConfig::standard(2, 2, 0)).run();
//!
//! // 2. Optimize a circuit with the learned transformations.
//! let optimizer = Optimizer::from_ecc_set(&ecc_set, SearchConfig::with_timeout(Duration::from_secs(2)));
//! let mut circuit = Circuit::new(2, 0);
//! for _ in 0..2 {
//!     circuit.push(Instruction::new(Gate::H, vec![0], vec![]));
//! }
//! circuit.push(Instruction::new(Gate::Cnot, vec![0, 1], vec![]));
//! assert_eq!(optimizer.optimize(&circuit).best_cost, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Exact arithmetic substrate: big integers, rationals, ℚ(ζ₈), matrices,
/// polynomials modulo the trigonometric ideal.
pub mod math {
    pub use quartz_math::*;
}

/// Symbolic circuit IR: gates, gate sets, parameter expressions, circuits
/// in sequence and DAG form (`CircuitDag`), QASM, numeric semantics and
/// fingerprints.
pub mod ir {
    pub use quartz_ir::*;
}

/// The circuit equivalence verifier (paper §4).
pub mod verify {
    pub use quartz_verify::*;
}

/// The RepGen generator, ECC sets and pruning passes (paper §3, §5).
pub mod gen {
    pub use quartz_gen::*;
}

/// The circuit optimizer, preprocessing passes and greedy baseline
/// (paper §6, §7.1).
pub mod opt {
    pub use quartz_opt::*;
}

/// The benchmark circuit suite (paper §7.2).
pub mod circuits {
    pub use quartz_circuits::*;
}

/// The long-running optimization daemon: HTTP/1.1 + JSON front-end over
/// the admission-capable scheduler (DESIGN.md §10).
pub mod serve {
    pub use quartz_serve::*;
}
