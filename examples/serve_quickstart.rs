//! Quickstart for `quartz-serve`: boot the optimization daemon in-process,
//! submit a circuit over HTTP with the bundled test client, stream its
//! improvement events, and fetch the finished result.
//!
//! Run with `cargo run --release --example serve_quickstart`.
//!
//! In production the daemon runs standalone (`cargo run --release -p
//! quartz-serve --bin quartz-serve -- --addr 127.0.0.1:7878`) against the
//! committed `libraries/*.qtzl` artifacts; this example generates a small
//! transformation index instead so it works from a bare checkout.

use quartz::gen::{GenConfig, Generator};
use quartz::ir::GateSet;
use quartz::opt::Optimizer;
use quartz::serve::{Client, Daemon, DaemonConfig, Server, SubmitRequest};

fn main() {
    // 1. A daemon over a freshly generated NAM index. With
    //    `DaemonConfig::default()` and `Daemon::new`, the server would
    //    instead route each request's `gate_set` to its committed `.qtzl`
    //    artifact (NAM eagerly at boot, IBM/Rigetti lazily on first use).
    let (ecc, _) = Generator::new(GateSet::nam(), GenConfig::standard(2, 2, 0)).run();
    let mut config = DaemonConfig::with_capacity(8);
    config.route_libraries = false;
    let optimizer = Optimizer::from_ecc_set(&ecc, config.search.clone());
    let daemon = Daemon::with_optimizer(optimizer, config);

    // 2. Serve it on an ephemeral port.
    let server = Server::bind("127.0.0.1:0", daemon).expect("bind");
    println!("quartz-serve listening on http://{}\n", server.addr());

    // 3. Submit a circuit. The cancelling CNOT pair is separated by an X
    //    on the target wire, so only the search (not preprocessing) can
    //    reduce it — guaranteeing visible improvement events.
    let client = Client::new(server.addr());
    let mut request = SubmitRequest::new(
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\n\
         cx q[0],q[1];\nx q[1];\ncx q[0],q[1];\nx q[1];\n",
    );
    request.budget = Some(30);
    let id = client.submit(&request).expect("submit");
    println!("submitted request {id} (budget 30)");

    // 4. Stream improvements: NDJSON lines carrying deterministic step
    //    ordinals, not timestamps — the same request replays the same
    //    sequence on any server.
    for event in client.stream(id).expect("stream") {
        println!(
            "  step {:>3}: best cost {} after {} iterations",
            event.step, event.best_cost, event.iterations
        );
    }

    // 5. Fetch the terminal result.
    let result = client.wait_result(id).expect("result");
    println!(
        "\nrequest {id} {}: {} -> {} gates in {} iterations",
        result.state.name(),
        result.outcome.initial_cost,
        result.outcome.best_cost,
        result.outcome.iterations
    );
    println!("optimized QASM:\n{}", result.outcome.best_qasm);
}
