//! Generate ECC sets for the three gate sets of the paper (Table 1), print
//! the Table-5-style metrics, and save the sets to JSON files that the
//! optimizer (or the original Quartz tooling) can load later.
//!
//! Run with `cargo run --release --example generate_ecc_sets [-- <max_n>]`.

use quartz::gen::{prune, GenConfig, Generator};
use quartz::ir::GateSet;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let out_dir = std::env::temp_dir().join("quartz_ecc_sets");
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let targets = [
        (GateSet::nam(), 2usize),
        (GateSet::ibm(), 4),
        (GateSet::rigetti(), 2),
    ];
    println!(
        "{:<10} {:>3} {:>10} {:>10} {:>12} {:>12}",
        "gate set", "n", "|T|", "|R_n|", "verify (s)", "total (s)"
    );
    for (gate_set, m) in targets {
        for n in 1..=max_n {
            let config = GenConfig::standard(n, 2, m);
            let (raw, stats) = Generator::new(gate_set.clone(), config).run();
            let (pruned, _) = prune(&raw);
            println!(
                "{:<10} {:>3} {:>10} {:>10} {:>12.2} {:>12.2}",
                gate_set.name(),
                n,
                pruned.num_transformations(),
                stats.num_representatives,
                stats.verification_time.as_secs_f64(),
                stats.total_time.as_secs_f64()
            );
            let path = out_dir.join(format!("{}_n{}_q2.json", gate_set.name().to_lowercase(), n));
            pruned.save(&path).expect("save ECC set");
        }
    }
    println!("\nECC sets written to {}", out_dir.display());
}
