//! Generate ECC sets for the three gate sets of the paper (Table 1), print
//! the Table-5-style metrics, and save each set twice: as interchange JSON
//! (what the original Quartz tooling reads) and as a binary `QTZL` library
//! artifact with a prebuilt dispatch index (what services load at startup;
//! DESIGN.md §7) — the in-code equivalent of `quartz-lib generate`.
//!
//! Run with `cargo run --release --example generate_ecc_sets [-- <max_n>]`.

use quartz::gen::{prune, GenConfig, Generator, Library};
use quartz::ir::GateSet;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let out_dir = std::env::temp_dir().join("quartz_ecc_sets");
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let targets = [
        (GateSet::nam(), 2usize),
        (GateSet::ibm(), 4),
        (GateSet::rigetti(), 2),
    ];
    println!(
        "{:<10} {:>3} {:>10} {:>10} {:>12} {:>12}",
        "gate set", "n", "|T|", "|R_n|", "verify (s)", "total (s)"
    );
    for (gate_set, m) in targets {
        for n in 1..=max_n {
            let config = GenConfig::standard(n, 2, m);
            let (raw, stats) = Generator::new(gate_set.clone(), config).run();
            let (pruned, _) = prune(&raw);
            println!(
                "{:<10} {:>3} {:>10} {:>10} {:>12.2} {:>12.2}",
                gate_set.name(),
                n,
                pruned.num_transformations(),
                stats.num_representatives,
                stats.verification_time.as_secs_f64(),
                stats.total_time.as_secs_f64()
            );
            let stem = format!("{}_n{}_q2", gate_set.name().to_lowercase(), n);
            pruned
                .save(out_dir.join(format!("{stem}.json")))
                .expect("save ECC set as JSON");
            let library = Library::new(gate_set.name(), pruned, true);
            library
                .save(out_dir.join(format!("{stem}.qtzl")))
                .expect("save library artifact");
            // The artifact round-trips losslessly, prebuilt index included.
            let back = Library::load(out_dir.join(format!("{stem}.qtzl")))
                .expect("reload library artifact");
            assert_eq!(back.ecc_set(), library.ecc_set());
            assert!(back.index().is_some());
        }
    }
    println!(
        "\nECC sets written to {} (.json interchange + .qtzl binary artifacts)",
        out_dir.display()
    );
}
