//! Quartz works for *arbitrary* gate sets: define your own gate set, let the
//! generator discover and verify its transformations, and inspect what it
//! found — no hand-written rules anywhere.
//!
//! Run with `cargo run --release --example custom_gate_set`.

use quartz::gen::{prune, GenConfig, Generator};
use quartz::ir::{Gate, GateSet};

fn main() {
    // A made-up device that supports only Hadamard, T, and CZ.
    let gate_set = GateSet::new("HTCZ", vec![Gate::H, Gate::T, Gate::Tdg, Gate::Cz]);
    println!("Custom gate set: {gate_set}");

    let config = GenConfig::standard(3, 2, 0);
    let (ecc_set, stats) = Generator::new(gate_set, config).run();
    let (pruned, _) = prune(&ecc_set);

    println!(
        "Discovered {} equivalence classes ({} transformations) among {} candidate circuits in {:.2?}.",
        pruned.len(),
        pruned.num_transformations(),
        stats.circuits_considered,
        stats.total_time
    );
    println!("\nA few verified identities (representative ≡ member):");
    for ecc in pruned.eccs.iter().take(8) {
        let rep = ecc.representative();
        for member in ecc.circuits().iter().skip(1).take(1) {
            println!("  [{}]  ≡  [{}]", rep, member);
        }
    }
    println!("\nEvery identity above was verified exactly (not numerically) by the");
    println!("polynomial-identity decision procedure that replaces Z3 in this reproduction.");
}
