//! Batch optimization through the `OptimizationService`: many circuits,
//! one shared transformation index loaded from a committed library
//! artifact (zero-generation startup), work-stealing across frontiers, and
//! streamed per-circuit improvement events.
//!
//! Run with `cargo run --release --example batch_optimize`.

use quartz::circuits::suite;
use quartz::ir::Circuit;
use quartz::opt::{preprocess_nam, LibraryCache, OptimizationService, SearchConfig};
use std::path::Path;
use std::time::{Duration, Instant};

fn main() {
    // 1. Bring up the service from the committed NAM (n=3, q=2, m=2)
    //    artifact: the ECC payload and the prebuilt dispatch index load as
    //    one cold file read, shared across every circuit of every batch
    //    (DESIGN.md §7). Fall back to generating the same library when the
    //    artifact is absent.
    let config = SearchConfig {
        timeout: Duration::from_secs(30),
        max_iterations: 20,
        ..SearchConfig::default()
    };
    let artifact = Path::new(env!("CARGO_MANIFEST_DIR")).join("libraries/nam_n3_q2.qtzl");
    let cache = LibraryCache::new();
    let service = match cache.get_or_load(&artifact) {
        Ok(library) => {
            println!(
                "Loaded {} in {:.2?} (prebuilt index: {})",
                library.path().display(),
                library.load_time(),
                library.index_was_prebuilt()
            );
            OptimizationService::from_library(&library, config)
        }
        Err(e) => {
            println!("No committed artifact ({e}); generating instead...");
            let (ecc_set, _) = quartz::gen::Generator::new(
                quartz::ir::GateSet::nam(),
                quartz::gen::GenConfig::standard(3, 2, 2),
            )
            .run();
            OptimizationService::from_ecc_set(&ecc_set, config)
        }
    };
    println!(
        "Service ready: {} transformations in the shared index",
        service.optimizer().transformations().len()
    );

    // 2. Submit a mixed batch of preprocessed benchmark circuits.
    let names = ["tof_3", "mod5_4", "barenco_tof_3", "tof_4"];
    let batch: Vec<Circuit> = names
        .iter()
        .map(|name| preprocess_nam(&suite::build_clifford_t(name).expect("known benchmark")))
        .collect();
    println!(
        "Optimizing a batch of {} circuits concurrently...\n",
        batch.len()
    );

    // 3. Stream per-circuit improvements while the batch runs.
    let start = Instant::now();
    let results = service.optimize_batch_with_progress(&batch, |event| {
        println!(
            "  [step {:>5}] {:<14} improved to {:>3} gates (iteration {})",
            event.step,
            names[event.request.index()],
            event.best_cost,
            event.iterations
        );
    });
    let elapsed = start.elapsed();

    // 4. Report the batch.
    println!(
        "\n{:<14} {:>6} {:>10} {:>10} {:>11}",
        "Circuit", "Orig.", "Optimized", "Reduction", "Iterations"
    );
    for (name, result) in names.iter().zip(&results) {
        println!(
            "{:<14} {:>6} {:>10} {:>9.1}% {:>11}",
            name,
            result.initial_cost,
            result.best_cost,
            100.0 * result.reduction(),
            result.iterations
        );
    }
    println!(
        "\nBatch finished in {elapsed:.2?} ({:.2} circuits/sec)",
        batch.len() as f64 / elapsed.as_secs_f64()
    );

    // 5. Per-circuit service results are bit-identical to standalone runs.
    let solo = service.optimizer().optimize(&batch[0]);
    assert_eq!(solo.best_circuit, results[0].best_circuit);
    assert_eq!(solo.iterations, results[0].iterations);
    println!("Cross-check against a standalone optimizer run: identical result");
}
