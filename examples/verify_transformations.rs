//! Use the equivalence verifier directly: check textbook circuit identities
//! (and non-identities), including parametric ones, and show the discovered
//! global phase factors.
//!
//! Run with `cargo run --release --example verify_transformations`.

use quartz::ir::{Circuit, Gate, Instruction, ParamExpr};
use quartz::verify::{Verdict, Verifier};

fn gate(g: Gate, qubits: &[usize]) -> Instruction {
    Instruction::new(g, qubits.to_vec(), vec![])
}

fn main() {
    let mut verifier = Verifier::with_phase_coeff_range(2);

    // Identity 1: the Hadamard sandwich flips a CNOT (Figure 3a).
    let mut lhs = Circuit::new(2, 0);
    for q in [0, 1] {
        lhs.push(gate(Gate::H, &[q]));
    }
    lhs.push(gate(Gate::Cnot, &[0, 1]));
    for q in [0, 1] {
        lhs.push(gate(Gate::H, &[q]));
    }
    let mut rhs = Circuit::new(2, 0);
    rhs.push(gate(Gate::Cnot, &[1, 0]));
    report(&mut verifier, "H⊗H · CNOT₀₁ · H⊗H  ≟  CNOT₁₀", &lhs, &rhs);

    // Identity 2: rotation fusion with symbolic parameters.
    let m = 2;
    let mut two = Circuit::new(1, m);
    two.push(Instruction::new(
        Gate::Rz,
        vec![0],
        vec![ParamExpr::var(0, m)],
    ));
    two.push(Instruction::new(
        Gate::Rz,
        vec![0],
        vec![ParamExpr::var(1, m)],
    ));
    let mut fused = Circuit::new(1, m);
    fused.push(Instruction::new(
        Gate::Rz,
        vec![0],
        vec![ParamExpr::sum_vars(0, 1, m)],
    ));
    report(&mut verifier, "Rz(p0)·Rz(p1)  ≟  Rz(p0+p1)", &two, &fused);

    // Identity 3: a parameter-dependent phase factor — U1(2p) vs Rz(2p).
    let mut u1 = Circuit::new(1, 1);
    u1.push(Instruction::new(
        Gate::U1,
        vec![0],
        vec![ParamExpr::scaled_var(0, 2, 1)],
    ));
    let mut rz = Circuit::new(1, 1);
    rz.push(Instruction::new(
        Gate::Rz,
        vec![0],
        vec![ParamExpr::scaled_var(0, 2, 1)],
    ));
    report(&mut verifier, "U1(2p0)  ≟  Rz(2p0)", &u1, &rz);

    // Non-identity: T and S are not equivalent.
    let mut t = Circuit::new(1, 0);
    t.push(gate(Gate::T, &[0]));
    let mut s = Circuit::new(1, 0);
    s.push(gate(Gate::S, &[0]));
    report(&mut verifier, "T  ≟  S", &t, &s);

    let stats = verifier.stats();
    println!(
        "\nVerifier statistics: {} queries, {} exact symbolic checks, {} verified equivalent.",
        stats.queries, stats.symbolic_checks, stats.verified_equivalent
    );
}

fn report(verifier: &mut Verifier, label: &str, a: &Circuit, b: &Circuit) {
    match verifier.equivalent(a, b) {
        Ok(Verdict::Equivalent(phase)) => println!("{label}: EQUIVALENT with phase {phase}"),
        Ok(Verdict::NotEquivalent) => println!("{label}: not equivalent"),
        Err(e) => println!("{label}: error: {e}"),
    }
}
