//! Optimize a benchmark circuit from the paper's suite end-to-end:
//! Clifford+T input → preprocessing (Toffoli decomposition + rotation
//! merging) → superoptimizer search, for the Nam gate set.
//!
//! Also writes the run's engine counters to `BENCH_search.json`
//! (machine-readable; see `quartz_bench::report`) so ad-hoc benchmark runs
//! contribute to the recorded perf trajectory too.
//!
//! Run with
//! `cargo run --release --example optimize_benchmark [-- <circuit_name>] [--profile]`.
//! `--profile` adds a per-phase wall-time breakdown of the search (matching,
//! delta, γ-precheck, canonicalize, fingerprint, dedup) to the console output
//! and the report.

use quartz::circuits::suite;
use quartz::gen::{GenConfig, Generator};
use quartz::ir::GateSet;
use quartz::opt::{greedy_optimize, preprocess_nam, Optimizer, SearchConfig};
use quartz_bench::report::{BenchReport, BENCH_SEARCH_FILE};
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile = args.iter().any(|a| a == "--profile");
    let name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "tof_3".to_string());
    let circuit = match suite::build_clifford_t(&name) {
        Some(c) => c,
        None => {
            eprintln!(
                "unknown benchmark {name:?}; available: {:?}",
                suite::BENCHMARK_NAMES
            );
            std::process::exit(1);
        }
    };
    println!(
        "Benchmark {name}: {} Clifford+T gates over {} qubits",
        circuit.gate_count(),
        circuit.num_qubits()
    );

    // Greedy rule-based baseline (the class of optimizer Quartz is compared
    // against in the paper).
    let (greedy, gstats) = greedy_optimize(&circuit);
    println!(
        "Greedy rule-based baseline: {} gates ({} passes)",
        greedy.gate_count(),
        gstats.passes
    );

    // Quartz preprocessing (paper §7.1).
    let preprocessed = preprocess_nam(&circuit);
    println!(
        "Quartz preprocess (Toffoli decomposition + rotation merging): {} gates",
        preprocessed.gate_count()
    );

    // Quartz search with a small learned transformation library, using the
    // batched parallel engine (batch_size > 1 expands the frontier on worker
    // threads; dispatch goes through the transformation index).
    println!("Generating a (3, 2)-complete ECC set for the Nam gate set...");
    let (ecc_set, _) = Generator::new(GateSet::nam(), GenConfig::standard(3, 2, 2)).run();
    let optimizer = Optimizer::from_ecc_set(
        &ecc_set,
        SearchConfig {
            timeout: Duration::from_secs(10),
            max_iterations: 100,
            batch_size: 8,
            profile,
            ..SearchConfig::default()
        },
    );
    let search_start = Instant::now();
    let result = optimizer.optimize(&preprocessed);
    let search_wall = search_start.elapsed();
    println!(
        "Quartz end-to-end: {} gates ({:.1}% reduction over the original, {} search iterations)",
        result.best_cost,
        100.0 * (1.0 - result.best_cost as f64 / circuit.gate_count() as f64),
        result.iterations
    );
    println!(
        "Search engine: {} pattern matches attempted, {} skipped by the index \
         ({:.1}% skip rate), {} duplicate candidates dropped by fingerprint, \
         {} distinct circuits seen",
        result.match_attempts,
        result.match_skips,
        100.0 * result.dispatch_skip_rate(),
        result.dedup_hits,
        result.circuits_seen
    );
    println!(
        "Match contexts: {} rebuilt from the sequence form (frontier roots), \
         {} derived in-place from their parent ({:.1}% derived)",
        result.ctx_rebuilds,
        result.ctx_derives,
        100.0 * result.ctx_derive_rate()
    );
    println!(
        "Match cache: {} sites served from the carried cache, {} recomputed \
         ({:.1}% hit rate), {} scoped re-match micro-runs, {} footprint nodes \
         invalidated",
        result.matches_cached,
        result.matches_recomputed,
        100.0 * result.cache_hit_rate(),
        result.scoped_rematches,
        result.cache_invalidate_nodes
    );
    println!(
        "Incremental fingerprints: {} of {} duplicates rejected by the \
         structural-hash preview ({:.1}% fast), {} materializations avoided, \
         {} confirm mismatches",
        result.fp_fast_rejects,
        result.dedup_hits,
        100.0 * result.fp_fast_reject_rate(),
        result.materializations_avoided,
        result.fp_confirm_mismatches
    );
    if profile {
        println!(
            "Search phase breakdown ({:.3}s profiled):",
            result.profile.total().as_secs_f64()
        );
        for (phase, secs) in result.profile.phases() {
            println!("  {phase:>12}  {secs:>9.4}s");
        }
    }

    let mut report = BenchReport::new("optimize_benchmark");
    report
        .suite(&format!("optimize/{name}"))
        .metric("wall_secs", search_wall.as_secs_f64())
        .metric("iterations", result.iterations as f64)
        .metric("best_cost", result.best_cost as f64)
        .metric("match_attempts", result.match_attempts as f64)
        .metric("scoped_rematches", result.scoped_rematches as f64)
        .metric("matches_cached", result.matches_cached as f64)
        .metric("matches_recomputed", result.matches_recomputed as f64)
        .metric("cache_hit_rate", result.cache_hit_rate())
        .metric("dispatch_skip_rate", result.dispatch_skip_rate())
        .metric("dedup_hits", result.dedup_hits as f64)
        .metric("fp_fast_rejects", result.fp_fast_rejects as f64)
        .metric(
            "materializations_avoided",
            result.materializations_avoided as f64,
        )
        .metric("fp_confirm_mismatches", result.fp_confirm_mismatches as f64);
    if profile {
        let suite = report.suite(&format!("optimize/{name}/profile"));
        for (phase, secs) in result.profile.phases() {
            suite.metric(&format!("{phase}_secs"), secs);
        }
        suite.metric("total_secs", result.profile.total().as_secs_f64());
    }
    match report.write(BENCH_SEARCH_FILE) {
        Ok(()) => println!("Wrote {BENCH_SEARCH_FILE}"),
        Err(e) => println!("warning: could not write {BENCH_SEARCH_FILE}: {e}"),
    }
}
