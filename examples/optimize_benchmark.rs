//! Optimize a benchmark circuit from the paper's suite end-to-end:
//! Clifford+T input → preprocessing (Toffoli decomposition + rotation
//! merging) → superoptimizer search, for the Nam gate set.
//!
//! Run with `cargo run --release --example optimize_benchmark [-- <circuit_name>]`.

use quartz::circuits::suite;
use quartz::gen::{GenConfig, Generator};
use quartz::ir::GateSet;
use quartz::opt::{greedy_optimize, preprocess_nam, Optimizer, SearchConfig};
use std::time::Duration;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tof_3".to_string());
    let circuit = match suite::build_clifford_t(&name) {
        Some(c) => c,
        None => {
            eprintln!(
                "unknown benchmark {name:?}; available: {:?}",
                suite::BENCHMARK_NAMES
            );
            std::process::exit(1);
        }
    };
    println!(
        "Benchmark {name}: {} Clifford+T gates over {} qubits",
        circuit.gate_count(),
        circuit.num_qubits()
    );

    // Greedy rule-based baseline (the class of optimizer Quartz is compared
    // against in the paper).
    let (greedy, gstats) = greedy_optimize(&circuit);
    println!(
        "Greedy rule-based baseline: {} gates ({} passes)",
        greedy.gate_count(),
        gstats.passes
    );

    // Quartz preprocessing (paper §7.1).
    let preprocessed = preprocess_nam(&circuit);
    println!(
        "Quartz preprocess (Toffoli decomposition + rotation merging): {} gates",
        preprocessed.gate_count()
    );

    // Quartz search with a small learned transformation library, using the
    // batched parallel engine (batch_size > 1 expands the frontier on worker
    // threads; dispatch goes through the transformation index).
    println!("Generating a (3, 2)-complete ECC set for the Nam gate set...");
    let (ecc_set, _) = Generator::new(GateSet::nam(), GenConfig::standard(3, 2, 2)).run();
    let optimizer = Optimizer::from_ecc_set(
        &ecc_set,
        SearchConfig {
            timeout: Duration::from_secs(10),
            max_iterations: 100,
            batch_size: 8,
            ..SearchConfig::default()
        },
    );
    let result = optimizer.optimize(&preprocessed);
    println!(
        "Quartz end-to-end: {} gates ({:.1}% reduction over the original, {} search iterations)",
        result.best_cost,
        100.0 * (1.0 - result.best_cost as f64 / circuit.gate_count() as f64),
        result.iterations
    );
    println!(
        "Search engine: {} pattern matches attempted, {} skipped by the index \
         ({:.1}% skip rate), {} duplicate candidates dropped by fingerprint, \
         {} distinct circuits seen",
        result.match_attempts,
        result.match_skips,
        100.0 * result.dispatch_skip_rate(),
        result.dedup_hits,
        result.circuits_seen
    );
    println!(
        "Match contexts: {} rebuilt from the sequence form (frontier roots), \
         {} derived in-place from their parent ({:.1}% derived)",
        result.ctx_rebuilds,
        result.ctx_derives,
        100.0 * result.ctx_derive_rate()
    );
}
