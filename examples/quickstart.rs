//! Quickstart: generate transformations for a gate set, verify them, and use
//! them to optimize a small circuit.
//!
//! Run with `cargo run --release --example quickstart`.

use quartz::gen::{prune, GenConfig, Generator};
use quartz::ir::{Circuit, Gate, GateSet, Instruction};
use quartz::opt::{Optimizer, SearchConfig};
use std::time::Duration;

fn main() {
    // 1. Pick a gate set and generate a small (n, q)-complete ECC set.
    let gate_set = GateSet::nam();
    let config = GenConfig::standard(3, 2, 1);
    println!("Generating transformations for the {gate_set} gate set (n=3, q=2, m=1)...");
    let (ecc_set, stats) = Generator::new(gate_set, config).run();
    println!(
        "  {} classes, {} transformations, {} representatives, generated in {:.2?}",
        ecc_set.len(),
        ecc_set.num_transformations(),
        stats.num_representatives,
        stats.total_time
    );

    // 2. Prune redundant transformations (paper §5).
    let (pruned, prune_stats) = prune(&ecc_set);
    println!(
        "  pruning: {} → {} → {} circuits (ECC simplification, common-subcircuit)",
        prune_stats.circuits_before,
        prune_stats.circuits_after_simplification,
        prune_stats.circuits_after_common_subcircuit
    );

    // 3. Build a circuit with some obvious redundancy.
    let mut circuit = Circuit::new(2, 0);
    circuit.push(Instruction::new(Gate::H, vec![0], vec![]));
    circuit.push(Instruction::new(Gate::H, vec![1], vec![]));
    circuit.push(Instruction::new(Gate::Cnot, vec![0, 1], vec![]));
    circuit.push(Instruction::new(Gate::H, vec![0], vec![]));
    circuit.push(Instruction::new(Gate::H, vec![1], vec![]));
    println!(
        "\nInput circuit ({} gates): {circuit}",
        circuit.gate_count()
    );

    // 4. Optimize with the cost-based backtracking search (paper §6).
    let optimizer =
        Optimizer::from_ecc_set(&pruned, SearchConfig::with_timeout(Duration::from_secs(5)));
    let result = optimizer.optimize(&circuit);
    println!(
        "Optimized circuit ({} gates, {:.1}% reduction after {} search iterations): {}",
        result.best_cost,
        100.0 * result.reduction(),
        result.iterations,
        result.best_circuit
    );
    println!(
        "Dispatch: {} pattern matches attempted, {} skipped by the index, {} dedup hits",
        result.match_attempts, result.match_skips, result.dedup_hits
    );
    println!(
        "Contexts: {} rebuilt (frontier roots), {} derived incrementally ({:.1}% derived)",
        result.ctx_rebuilds,
        result.ctx_derives,
        100.0 * result.ctx_derive_rate()
    );

    // 5. Double-check the result numerically.
    let ok = quartz::ir::equivalent_up_to_phase(&circuit, &result.best_circuit, &[], 1e-9);
    println!(
        "Numeric equivalence check (up to global phase): {}",
        if ok { "passed" } else { "FAILED" }
    );
}
