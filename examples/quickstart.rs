//! Quickstart: load a pre-generated transformation library (falling back to
//! generating one), optimize a small circuit, and numerically re-check the
//! result.
//!
//! Run with `cargo run --release --example quickstart`.

use quartz::gen::{prune, GenConfig, Generator};
use quartz::ir::{Circuit, Gate, GateSet, Instruction};
use quartz::opt::{LibraryCache, Optimizer, SearchConfig};
use std::path::Path;
use std::time::Duration;

fn main() {
    let config = SearchConfig::with_timeout(Duration::from_secs(5));

    // 1. Load the committed NAM (n=3, q=2) library artifact — ECC payload
    //    plus prebuilt dispatch index, so startup is a cold file read
    //    (DESIGN.md §7). Fall back to generating when it is absent (e.g.
    //    when running from outside the repository).
    let artifact = Path::new(env!("CARGO_MANIFEST_DIR")).join("libraries/nam_n3_q2.qtzl");
    let cache = LibraryCache::new();
    let optimizer = match cache.get_or_load(&artifact) {
        Ok(library) => {
            println!(
                "Loaded {} in {:.2?}: {} gate set, {} transformations (index {})",
                library.path().display(),
                library.load_time(),
                library.header().gate_set,
                library.shared_index().len(),
                if library.index_was_prebuilt() {
                    "prebuilt"
                } else {
                    "rebuilt"
                }
            );
            Optimizer::from_library(&library, config)
        }
        Err(e) => {
            // The generate → prune → build pipeline the artifact replaces
            // (this is what `quartz-lib generate` runs offline).
            println!("No committed artifact ({e}); generating instead...");
            let gate_set = GateSet::nam();
            let (ecc_set, stats) = Generator::new(gate_set, GenConfig::standard(3, 2, 2)).run();
            let (pruned, _) = prune(&ecc_set);
            println!(
                "  {} classes, {} transformations, generated in {:.2?}",
                pruned.len(),
                pruned.num_transformations(),
                stats.total_time
            );
            Optimizer::from_ecc_set(&pruned, config)
        }
    };

    // 2. Build a circuit with some obvious redundancy.
    let mut circuit = Circuit::new(2, 0);
    circuit.push(Instruction::new(Gate::H, vec![0], vec![]));
    circuit.push(Instruction::new(Gate::H, vec![1], vec![]));
    circuit.push(Instruction::new(Gate::Cnot, vec![0, 1], vec![]));
    circuit.push(Instruction::new(Gate::H, vec![0], vec![]));
    circuit.push(Instruction::new(Gate::H, vec![1], vec![]));
    println!(
        "\nInput circuit ({} gates): {circuit}",
        circuit.gate_count()
    );

    // 3. Optimize with the cost-based backtracking search (paper §6).
    let result = optimizer.optimize(&circuit);
    println!(
        "Optimized circuit ({} gates, {:.1}% reduction after {} search iterations): {}",
        result.best_cost,
        100.0 * result.reduction(),
        result.iterations,
        result.best_circuit
    );
    println!(
        "Dispatch: {} pattern matches attempted, {} skipped by the index, {} dedup hits",
        result.match_attempts, result.match_skips, result.dedup_hits
    );
    println!(
        "Contexts: {} rebuilt (frontier roots), {} derived incrementally ({:.1}% derived)",
        result.ctx_rebuilds,
        result.ctx_derives,
        100.0 * result.ctx_derive_rate()
    );
    println!(
        "Match cache: {} sites served from the carried cache, {} recomputed \
         ({:.1}% hit rate), {} footprint nodes invalidated",
        result.matches_cached,
        result.matches_recomputed,
        100.0 * result.cache_hit_rate(),
        result.cache_invalidate_nodes
    );

    // 4. Double-check the result numerically.
    let ok = quartz::ir::equivalent_up_to_phase(&circuit, &result.best_circuit, &[], 1e-9);
    println!(
        "Numeric equivalence check (up to global phase): {}",
        if ok { "passed" } else { "FAILED" }
    );
}
