//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds with no crates.io access, so this vendored crate
//! implements the subset of proptest the test suites use: strategies over
//! integer/float ranges, `Just`, tuples, `prop_oneof!`, `prop::collection::vec`,
//! `prop_map` / `prop_filter_map`, `any::<T>()`, and the `proptest!` macro with
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Differences from the real proptest (documented in DESIGN.md §4):
//!
//! * failing cases are **not shrunk** — the failing input is reported as-is;
//! * random generation is seeded deterministically from the test name, so
//!   every run exercises the same cases (reproducible CI).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A generator of values of type [`Strategy::Value`].
    ///
    /// `generate` returns `None` when a filter rejects the drawn value; the
    /// runner then retries the whole case with fresh randomness.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value, or `None` on a local rejection.
        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Maps generated values through `f`, rejecting the case when `f`
        /// returns `None`. `whence` labels the filter in diagnostics.
        fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                inner: self,
                f,
                _whence: whence,
            }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                generate: Box::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        _whence: &'static str,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.generate(rng).and_then(&self.f)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        #[allow(clippy::type_complexity)]
        generate: Box<dyn Fn(&mut TestRng) -> Option<T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            (self.generate)(rng)
        }
    }

    /// Uniform choice between boxed alternatives (the `prop_oneof!` backend).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union; panics on an empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    let r = rng.next_u128() % span;
                    Some(((self.start as i128) + r as i128) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128)
                        .wrapping_sub(*self.start() as i128) as u128 + 1;
                    let r = rng.next_u128() % span;
                    Some(((*self.start() as i128) + r as i128) as $t)
                }
            }
        )*};
    }

    int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> Option<f64> {
            assert!(self.start < self.end, "empty range strategy");
            Some(self.start + rng.next_f64() * (self.end - self.start))
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    Some(($(self.$idx.generate(rng)?,)+))
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point for types with a canonical strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A` (mirrors `proptest::arbitrary::any`).
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Full-domain strategy for a primitive type.
    pub struct FullRange<T>(core::marker::PhantomData<T>);

    macro_rules! arbitrary_ints {
        ($($t:ty => $gen:expr),*) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;
                #[allow(clippy::redundant_closure_call)]
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    Some(($gen)(rng))
                }
            }
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;
                fn arbitrary() -> Self::Strategy {
                    FullRange(core::marker::PhantomData)
                }
            }
        )*};
    }

    arbitrary_ints! {
        u8 => |rng: &mut TestRng| rng.next_u64() as u8,
        u16 => |rng: &mut TestRng| rng.next_u64() as u16,
        u32 => |rng: &mut TestRng| rng.next_u64() as u32,
        u64 => |rng: &mut TestRng| rng.next_u64(),
        u128 => |rng: &mut TestRng| rng.next_u128(),
        usize => |rng: &mut TestRng| rng.next_u64() as usize,
        i8 => |rng: &mut TestRng| rng.next_u64() as i8,
        i16 => |rng: &mut TestRng| rng.next_u64() as i16,
        i32 => |rng: &mut TestRng| rng.next_u64() as i32,
        i64 => |rng: &mut TestRng| rng.next_u64() as i64,
        i128 => |rng: &mut TestRng| rng.next_u128() as i128,
        isize => |rng: &mut TestRng| rng.next_u64() as isize,
        bool => |rng: &mut TestRng| rng.next_u64() & 1 == 1,
        f64 => |rng: &mut TestRng| rng.next_f64() * 2e6 - 1e6
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length specification for [`vec()`]: an exact size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }
}

pub mod test_runner {
    //! The deterministic case runner behind the `proptest!` macro.

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Outcome of one test case body.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected (`prop_assume!` failed or a filter rejected);
        /// the runner retries with fresh randomness.
        Reject(String),
        /// A `prop_assert*!` failed; the runner panics with this message.
        Fail(String),
    }

    /// Deterministic SplitMix64 generator.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Next 128 random bits.
        pub fn next_u128(&mut self) -> u128 {
            ((self.next_u64() as u128) << 64) | self.next_u64() as u128
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// FNV-1a over the test name, used to seed its RNG deterministically.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `case` until `config.cases` cases have been accepted, panicking on
    /// the first failure. Rejections are retried with fresh randomness up to a
    /// global cap.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let seed = seed_from_name(name);
        let max_rejects = (config.cases as u64).saturating_mul(256).max(4096);
        let mut accepted: u32 = 0;
        let mut rejected: u64 = 0;
        let mut attempt: u64 = 0;
        while accepted < config.cases {
            let mut rng =
                TestRng::new(seed.wrapping_add(attempt.wrapping_mul(0x2545_f491_4f6c_dd1d)));
            attempt += 1;
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "proptest {name}: too many rejected cases ({rejected}); \
                         loosen the strategy or the prop_assume! conditions"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest {name} failed at case {accepted} (attempt {attempt}): {msg}")
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! Mirror of the `prop` module path exposed by the real prelude.
        pub use crate::collection;
    }
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Rejects the current case (retried with fresh randomness) when `cond` is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Fails the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left
                ),
            ));
        }
    }};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests ($config) $($rest)*);
    };
    (@tests ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $(let $arg = $strat;)+
            $crate::test_runner::run(&config, stringify!($name), |rng| {
                $(
                    let $arg = match $crate::strategy::Strategy::generate(&$arg, rng) {
                        ::core::option::Option::Some(v) => v,
                        ::core::option::Option::None => {
                            return ::core::result::Result::Err(
                                $crate::test_runner::TestCaseError::Reject(
                                    ::std::string::String::from("strategy filter"),
                                ),
                            )
                        }
                    };
                )+
                #[allow(clippy::redundant_closure_call)]
                (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })()
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@tests ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::new(42);
        let mut b = crate::test_runner::TestRng::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -5i32..=5, y in 1usize..10, z in -2.0f64..2.0) {
            prop_assert!((-5..=5).contains(&x));
            prop_assert!((1..10).contains(&y));
            prop_assert!((-2.0..2.0).contains(&z));
        }

        #[test]
        fn filters_and_maps_compose(
            v in prop::collection::vec((0usize..10).prop_map(|n| n * 2), 3),
            w in (0usize..100).prop_filter_map("even only", |n| if n % 2 == 0 { Some(n) } else { None }),
        ) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!(v.iter().all(|n| n % 2 == 0));
            prop_assert_eq!(w % 2, 0);
        }

        #[test]
        fn oneof_and_assume_work(g in prop_oneof![Just(1u8), Just(2u8)], n in 0u8..4) {
            prop_assume!(n > 0);
            prop_assert!(g == 1 || g == 2);
            prop_assert_ne!(n, 0);
        }

        #[test]
        fn any_generates_full_domain(x in any::<i128>()) {
            let _ = x;
        }
    }
}
