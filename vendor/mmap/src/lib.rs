//! Offline stand-in for the `memmap2` crate.
//!
//! The workspace builds with no crates.io access and every crate forbids
//! `unsafe`, so a real `mmap(2)` wrapper (which is unavoidably `unsafe`: the
//! kernel may unmap or change pages behind the borrow checker's back) is off
//! the table. This crate keeps the *shape* of a read-only memory map — open a
//! file once, then service random-access reads of arbitrary byte ranges
//! without ever loading the whole file — using positioned reads instead of
//! page mapping:
//!
//! * on Unix, [`std::os::unix::fs::FileExt::read_exact_at`] issues `pread(2)`
//!   calls against a shared `&File`, so concurrent readers never contend on a
//!   seek cursor;
//! * elsewhere, a `Mutex<File>` serializes `seek` + `read_exact` pairs.
//!
//! Differences from the real memmap2 (documented in DESIGN.md §4):
//!
//! * ranges are *copied out* ([`Mmap::read_range`] returns a `Vec<u8>`)
//!   rather than borrowed from mapped pages — callers that want zero-copy
//!   slices should keep using in-memory byte buffers;
//! * the file length is captured at open; a file truncated behind an open
//!   map surfaces as an `UnexpectedEof` read error rather than a fault.
//!
//! Both behaviours are what the lazy QTZL reader wants: it reads each class
//! payload at most once (then caches the decoded form), and a typed I/O
//! error on concurrent truncation is strictly friendlier than `SIGBUS`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs::File;
use std::io;
use std::ops::Range;
use std::path::Path;

#[cfg(not(unix))]
use std::io::{Read, Seek, SeekFrom};
#[cfg(not(unix))]
use std::sync::Mutex;

/// A read-only "map" of a file: open once, read byte ranges at random
/// offsets from any number of threads.
#[derive(Debug)]
pub struct Mmap {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: Mutex<File>,
    len: u64,
}

impl Mmap {
    /// Opens `path` read-only and records its current length.
    pub fn open(path: &Path) -> io::Result<Mmap> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        Ok(Mmap {
            #[cfg(unix)]
            file,
            #[cfg(not(unix))]
            file: Mutex::new(file),
            len,
        })
    }

    /// Length of the mapped file in bytes, as captured at open time.
    pub fn len(&self) -> usize {
        // QTZL artifacts are far below u32::MAX today; saturate rather than
        // panic if a >4 GiB file meets a 32-bit target.
        usize::try_from(self.len).unwrap_or(usize::MAX)
    }

    /// True when the mapped file was empty at open time.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Fills `buf` from the file starting at byte `offset`, failing with
    /// `UnexpectedEof` if the range runs past the length captured at open.
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let end = offset.checked_add(buf.len() as u64);
        if end.is_none() || end.unwrap() > self.len {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "read past end of mapped file",
            ));
        }
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            let mut file = self.file.lock().expect("mmap file lock poisoned");
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(buf)
        }
    }

    /// Copies the byte range out of the file (the stand-in for borrowing a
    /// sub-slice of mapped pages).
    pub fn read_range(&self, range: Range<usize>) -> io::Result<Vec<u8>> {
        if range.start > range.end {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "inverted read range",
            ));
        }
        let mut buf = vec![0u8; range.end - range.start];
        self.read_at(range.start as u64, &mut buf)?;
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "mmap-shim-test-{}-{bytes:p}.bin",
            std::process::id()
        ));
        let mut f = File::create(&path).expect("create temp file");
        f.write_all(bytes).expect("write temp file");
        path
    }

    #[test]
    fn ranges_round_trip() {
        let data: Vec<u8> = (0u8..=255).collect();
        let path = temp_file(&data);
        let map = Mmap::open(&path).expect("open");
        assert_eq!(map.len(), 256);
        assert!(!map.is_empty());
        assert_eq!(map.read_range(0..256).unwrap(), data);
        assert_eq!(map.read_range(10..14).unwrap(), &data[10..14]);
        assert_eq!(map.read_range(255..256).unwrap(), &data[255..]);
        assert!(map.read_range(250..257).is_err());
        #[allow(clippy::reversed_empty_ranges)]
        let reversed = 7..3;
        assert!(map.read_range(reversed).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn concurrent_reads_agree() {
        let data: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        let path = temp_file(&data);
        let map = std::sync::Arc::new(Mmap::open(&path).expect("open"));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let map = std::sync::Arc::clone(&map);
                let data = data.clone();
                std::thread::spawn(move || {
                    for i in 0..64 {
                        let start = (t * 97 + i * 31) % 4000;
                        let end = start + 96;
                        assert_eq!(map.read_range(start..end).unwrap(), &data[start..end]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("reader thread");
        }
        let _ = std::fs::remove_file(path);
    }
}
