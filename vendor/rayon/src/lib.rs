//! Offline stand-in for the `rayon` crate.
//!
//! The workspace builds with no crates.io access, so this vendored crate
//! implements the one parallel primitive the optimizer's search engine needs:
//! an order-preserving `par_iter().map(f).collect()` over slices, executed on
//! scoped OS threads. Work is split into contiguous chunks, one per worker,
//! and chunk results are re-joined in input order, so a `collect` is
//! deterministic regardless of thread scheduling.
//!
//! Differences from the real rayon (documented in DESIGN.md §4):
//!
//! * no global thread pool — threads are spawned per `collect` call, which is
//!   fine for the search's coarse batch granularity;
//! * [`ParIter::with_max_threads`] replaces pool configuration;
//! * only `map` + `collect` are provided.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::IntoParallelRefIterator;
}

/// Number of worker threads used by default (mirrors
/// `rayon::current_num_threads`).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Conversion of `&self` into a parallel iterator, mirroring rayon's trait of
/// the same name.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: Sync + 'a;

    /// Returns a parallel iterator over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter {
            items: self,
            max_threads: current_num_threads(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter {
            items: self.as_slice(),
            max_threads: current_num_threads(),
        }
    }
}

/// A borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
    max_threads: usize,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Caps the number of worker threads used by the eventual `collect`
    /// (stand-in for rayon's thread-pool configuration).
    pub fn with_max_threads(mut self, n: usize) -> Self {
        self.max_threads = n.max(1);
        self
    }

    /// Maps every element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            max_threads: self.max_threads,
            f,
        }
    }
}

/// The result of [`ParIter::map`]; consumed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    max_threads: usize,
    f: F,
}

impl<T: Sync, R: Send, F: Fn(&T) -> R + Sync> ParMap<'_, T, F> {
    /// Runs the map on worker threads and collects the results **in input
    /// order** — thread scheduling never affects the output.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n = self.items.len();
        let threads = self.max_threads.min(n).max(1);
        if threads <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk_len = n.div_ceil(threads);
        let f = &self.f;
        let mut chunk_results: Vec<Vec<R>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for handle in handles {
                chunk_results.push(handle.join().expect("parallel map worker panicked"));
            }
        });
        chunk_results.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = items.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_empty_inputs_work() {
        let items: Vec<usize> = vec![7];
        let out: Vec<usize> = items
            .par_iter()
            .with_max_threads(1)
            .map(|x| x + 1)
            .collect();
        assert_eq!(out, vec![8]);
        let empty: Vec<usize> = Vec::new();
        let out: Vec<usize> = empty.par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn thread_cap_is_respected_logically() {
        let items: Vec<usize> = (0..17).collect();
        let out: Vec<usize> = items
            .par_iter()
            .with_max_threads(4)
            .map(|x| x * x)
            .collect();
        assert_eq!(out.len(), 17);
        assert_eq!(out[16], 256);
    }
}
