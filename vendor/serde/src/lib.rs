//! Offline stand-in for the `serde` facade crate.
//!
//! The workspace builds in environments with no crates.io access, so this
//! vendored crate supplies just enough surface for `use serde::{Deserialize,
//! Serialize}` and `#[derive(Serialize, Deserialize)]` to compile: the marker
//! traits below (type namespace) and the no-op derives re-exported from
//! `serde_derive` (macro namespace). Durable persistence in this workspace
//! goes through the hand-written JSON codec in `quartz-gen` instead; see
//! DESIGN.md §4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. No methods; the no-op derive
/// does not implement it, it exists so the name resolves in `use` items.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
