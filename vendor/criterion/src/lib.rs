//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds with no crates.io access, so this vendored crate
//! provides the criterion API surface the benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros —
//! backed by a simple wall-clock timer. There is no statistical analysis:
//! each benchmark reports the minimum, mean, and maximum of `sample_size`
//! timed samples. See DESIGN.md §4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` (after one warm-up call).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Re-export of the standard black box, matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<40} (no samples recorded)");
        return;
    }
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "{name:<40} time: [{min:>12?} {mean:>12?} {max:>12?}]  ({} samples)",
        bencher.samples.len()
    );
}

/// Declares a function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("group");
        group.sample_size(3);
        group.bench_function("inner", |b| b.iter(|| 2 * 2));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &5, |b, x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
