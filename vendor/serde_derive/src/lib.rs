//! No-op replacements for serde's `Serialize` / `Deserialize` derive macros.
//!
//! This workspace builds in fully offline environments where crates.io is
//! unreachable, so the real `serde` cannot be fetched. The codebase only uses
//! the derives as annotations (actual persistence goes through the
//! hand-written JSON codec in `quartz-gen`), so the derives expand to nothing.
//! See DESIGN.md §4 for the vendoring policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Expands to nothing; the annotated type gains no trait impls.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the annotated type gains no trait impls.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
